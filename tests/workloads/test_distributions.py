"""Unit tests for the workload parameter distributions."""

from __future__ import annotations

import random

import pytest

from repro.exceptions import WorkloadError
from repro.workloads import Constant, Discrete, Exponential, LogUniform, Mixture, Normal, Uniform


def _samples(distribution, count=2000, seed=1):
    rng = random.Random(seed)
    return [distribution.sample(rng) for _ in range(count)]


class TestDistributions:
    def test_constant(self):
        assert set(_samples(Constant(3.5), count=10)) == {3.5}

    def test_uniform_range_and_mean(self):
        samples = _samples(Uniform(2.0, 4.0))
        assert all(2.0 <= value <= 4.0 for value in samples)
        assert sum(samples) / len(samples) == pytest.approx(3.0, abs=0.1)

    def test_uniform_invalid_range(self):
        with pytest.raises(WorkloadError):
            Uniform(2.0, 1.0)

    def test_loguniform_range(self):
        samples = _samples(LogUniform(0.01, 10.0))
        assert all(0.01 <= value <= 10.0 for value in samples)
        # Log-uniform puts half its mass below the geometric midpoint.
        below = sum(1 for value in samples if value < (0.01 * 10.0) ** 0.5)
        assert below == pytest.approx(len(samples) / 2, rel=0.15)

    def test_loguniform_invalid(self):
        with pytest.raises(WorkloadError):
            LogUniform(0.0, 1.0)
        with pytest.raises(WorkloadError):
            LogUniform(2.0, 1.0)

    def test_exponential_mean(self):
        samples = _samples(Exponential(2.0))
        assert sum(samples) / len(samples) == pytest.approx(2.0, rel=0.1)
        assert min(samples) >= 0.0

    def test_exponential_offset(self):
        samples = _samples(Exponential(1.0, offset=5.0), count=200)
        assert min(samples) >= 5.0

    def test_exponential_invalid(self):
        with pytest.raises(WorkloadError):
            Exponential(0.0)

    def test_normal_truncation(self):
        samples = _samples(Normal(mean=1.0, stddev=2.0, minimum=0.0))
        assert min(samples) >= 0.0

    def test_normal_invalid(self):
        with pytest.raises(WorkloadError):
            Normal(mean=0.0, stddev=-1.0)

    def test_normal_degenerate_clamps_to_minimum(self):
        samples = _samples(Normal(mean=-100.0, stddev=0.001, minimum=0.5), count=10)
        assert set(samples) == {0.5}

    def test_mixture_weights(self):
        mixture = Mixture(Constant(0.0), Constant(1.0), first_weight=0.25)
        samples = _samples(mixture)
        assert sum(samples) / len(samples) == pytest.approx(0.75, abs=0.05)

    def test_mixture_invalid_weight(self):
        with pytest.raises(WorkloadError):
            Mixture(Constant(0.0), Constant(1.0), first_weight=1.5)

    def test_discrete_choices(self):
        distribution = Discrete(((1.0, 1.0), (2.0, 3.0)))
        samples = _samples(distribution)
        assert set(samples) == {1.0, 2.0}
        share_of_twos = sum(1 for value in samples if value == 2.0) / len(samples)
        assert share_of_twos == pytest.approx(0.75, abs=0.05)

    def test_discrete_invalid(self):
        with pytest.raises(WorkloadError):
            Discrete(())
        with pytest.raises(WorkloadError):
            Discrete(((1.0, -1.0),))
        with pytest.raises(WorkloadError):
            Discrete(((1.0, 0.0),))

    def test_sampling_is_reproducible_per_seed(self):
        assert _samples(Uniform(0, 1), count=10, seed=3) == _samples(Uniform(0, 1), count=10, seed=3)

"""Tests of the native async shard path: POSTs complete as event-loop futures.

A process-shard :class:`ShardRouter` exposes ``submit_async`` /
``optimize_batch_async``; the asyncio front end detects it and answers plan
traffic with zero bridge threads.  These tests cover detection, response
parity with the blocking router, trace stitching through the awaitable path,
admission semantics, and shard-process death mid-request.
"""

from __future__ import annotations

import asyncio
import json
import threading
import urllib.error
import urllib.request

import pytest
from serving_helpers import get_json, post_json

from repro.exceptions import ShardingError
from repro.serialization import problem_to_dict
from repro.serving import PlanService, PlanServiceConfig, serve_async
from repro.serving.http import response_to_dict
from repro.sharding import ProcessShard, ShardRouter, ShardRouterConfig
from repro.serving.fingerprint import fingerprint_problem
from repro.sharding.multiplexer import ResponseMultiplexer


def fast_config(**overrides) -> PlanServiceConfig:
    defaults = dict(budget_seconds=None, algorithms=("greedy_min_term",))
    defaults.update(overrides)
    return PlanServiceConfig(**defaults)


def process_router(shards: int = 2, **overrides) -> ShardRouter:
    return ShardRouter(
        ShardRouterConfig(
            shards=shards, backend="processes", service_config=fast_config(**overrides)
        )
    )


def post_traced(url: str, payload: dict, trace_id: str) -> tuple[int, dict]:
    body = json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        url,
        data=body,
        headers={"Content-Type": "application/json", "X-Trace-Id": trace_id},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read().decode("utf-8"))


def bridge_thread_names() -> list[str]:
    return [
        t.name for t in threading.enumerate() if t.name.startswith("aserver-bridge")
    ]


@pytest.fixture(scope="module")
def native_server():
    with process_router() as router:
        with serve_async(router, host="127.0.0.1", port=0) as handle:
            host, port = handle.address
            yield f"http://{host}:{port}", router, handle.server


class TestNativeDetection:
    def test_process_router_supports_async(self):
        with process_router() as router:
            assert router.supports_async

    def test_inproc_router_does_not(self, make_random_problem):
        config = ShardRouterConfig(shards=2, service_config=fast_config())
        with ShardRouter(config) as router:
            assert not router.supports_async

            async def call() -> None:
                await router.submit_async(make_random_problem(4, 0))

            with pytest.raises(ShardingError, match="no async submit path"):
                asyncio.run(call())

    def test_server_detects_native_backend(self, native_server):
        _, _, server = native_server
        assert server.native_async

    def test_in_proc_service_falls_back_to_bridge(self):
        with PlanService(fast_config()) as plan_service:
            with serve_async(plan_service, host="127.0.0.1", port=0) as handle:
                assert not handle.server.native_async


class TestNativeParity:
    """Native answers are identical to the blocking router's, byte for byte
    modulo the per-call latency measurement."""

    @staticmethod
    def _comparable(document: dict) -> dict:
        return {
            key: value
            for key, value in document.items()
            if key not in ("latency_seconds", "trace_id")
        }

    def test_plan_matches_sync_router(self, native_server, make_random_problem):
        url, router, _ = native_server
        problem = make_random_problem(6, 11)
        post_json(f"{url}/plan", problem_to_dict(problem))  # warm the shard cache
        sync_document = response_to_dict(router.submit(problem))
        status, native_document = post_json(f"{url}/plan", problem_to_dict(problem))
        assert status == 200
        assert self._comparable(native_document) == self._comparable(sync_document)

    def test_batch_answers_in_request_order(self, native_server, make_random_problem):
        url, router, _ = native_server
        problems = [make_random_problem(5, seed) for seed in range(8)]
        document = {"problems": [problem_to_dict(problem) for problem in problems]}
        status, payload = post_json(f"{url}/plan/batch", document)
        assert status == 200
        assert len(payload["responses"]) == len(problems)
        sync_responses = router.optimize_batch(problems)
        for native_document, sync_response in zip(payload["responses"], sync_responses):
            assert native_document["order"] == list(sync_response.order)
            assert native_document["cost"] == sync_response.cost
            assert native_document["fingerprint"] == sync_response.fingerprint

    def test_malformed_documents_keep_the_shared_status_map(self, native_server):
        url, _, _ = native_server
        status, payload = post_json(f"{url}/plan", {"nonsense": True})
        assert status == 400
        status, payload = post_json(f"{url}/plan/batch", {"problems": []})
        assert status == 400
        assert "non-empty" in payload["error"]

    def test_no_bridge_threads_after_native_traffic(self, native_server, make_random_problem):
        url, _, _ = native_server
        for seed in range(4):
            status, _ = post_json(
                f"{url}/plan", problem_to_dict(make_random_problem(5, 20 + seed))
            )
            assert status == 200
        assert bridge_thread_names() == []


class TestNativeTraceStitching:
    def test_one_tree_spans_all_four_layers(self, native_server, make_random_problem):
        """The ISSUE acceptance: http.request → router.submit → shard.submit →
        service.submit in one stitched tree, with the trace activated around
        the await rather than riding a bridge thread."""
        url, _, _ = native_server
        trace_id = "nativetrace01"
        problem = make_random_problem(7, 42)
        status, payload = post_traced(f"{url}/plan", problem_to_dict(problem), trace_id)
        assert status == 200
        assert payload["trace_id"] == trace_id
        status, tree = get_json(f"{url}/trace/{trace_id}")
        assert status == 200
        assert tree["trace_id"] == trace_id

        def chain(node) -> list[str]:
            names = [node["name"]]
            children = node.get("children", [])
            while children:
                # Follow the submit chain (first child is the dispatch path).
                node = children[0]
                names.append(node["name"])
                children = node.get("children", [])
            return names

        roots = tree["roots"]
        assert len(roots) == 1
        names = chain(roots[0])
        for expected in ("http.request", "router.submit", "shard.submit", "service.submit"):
            assert expected in names, f"{expected} missing from {names}"
        positions = [names.index(expected) for expected in (
            "http.request", "router.submit", "shard.submit", "service.submit"
        )]
        assert positions == sorted(positions)  # nested in layer order


class TestNativeAdmission:
    def test_native_path_keeps_503_semantics(self, make_random_problem):
        with process_router() as router:
            with serve_async(
                router, host="127.0.0.1", port=0, max_workers=1
            ) as handle:
                host, port = handle.address
                # Pin the admission counter at the bound: the next POST must
                # be refused up front, native path or not.
                handle.server._bridged = handle.server.max_workers
                status, payload = post_json(
                    f"http://{host}:{port}/plan",
                    problem_to_dict(make_random_problem(5, 1)),
                )
                assert status == 503
                assert "over capacity" in payload["error"]
                handle.server._bridged = 0
                status, _ = post_json(
                    f"http://{host}:{port}/plan",
                    problem_to_dict(make_random_problem(5, 1)),
                )
                assert status == 200
                # Liveness survives saturation, unchanged.
                status, _ = get_json(f"http://{host}:{port}/healthz")
                assert status == 200


class TestRouterAsyncSurface:
    def test_submit_async_matches_submit(self, make_random_problem):
        with process_router() as router:
            problem = make_random_problem(6, 5)
            sync_response = router.submit(problem)

            async def call():
                return await router.submit_async(problem)

            native_response = asyncio.run(call())
            assert native_response.order == sync_response.order
            assert native_response.cost == sync_response.cost
            assert native_response.cache_hit  # second answer for the fingerprint

    def test_batch_async_deadline_surfaces_as_sharding_error(self, make_random_problem):
        with process_router() as router:
            problems = [make_random_problem(5, seed) for seed in range(4)]

            async def call():
                return await router.optimize_batch_async(
                    problems, timeout_seconds=1e-6
                )

            with pytest.raises(ShardingError, match="deadline"):
                asyncio.run(call())
            # The router survives the deadline: late answers are dropped, not
            # resolved into dead futures, and fresh requests still work.
            response = router.submit(problems[0])
            assert sorted(response.order) == list(range(5))


class TestShardDeathOnAsyncPath:
    def test_pending_future_fails_with_typed_shard_error(self, make_random_problem):
        """A request in flight when the shard process dies fails with the
        typed error instead of hanging the event loop (fast sweep cadence)."""
        mux = ResponseMultiplexer(name="test-mux-async-death", poll_seconds=0.02)
        shard = ProcessShard("doomed-async", fast_config(), multiplexer=mux)
        try:

            async def scenario():
                await shard.submit_async(make_random_problem(4, 0))  # child is up
                shard._process.terminate()
                shard._process.join(timeout=5.0)
                # The waiter registers, no answer ever arrives, the death
                # sweep fails the pending future.
                await shard.submit_async(make_random_problem(4, 1))

            with pytest.raises(ShardingError, match="died"):
                asyncio.run(scenario())
        finally:
            shard.close()
            mux.close()

    def test_survivors_answer_and_healthz_stays_up(self, make_random_problem):
        with process_router() as router:
            with serve_async(router, host="127.0.0.1", port=0) as handle:
                host, port = handle.address
                url = f"http://{host}:{port}"
                precision = router.config.service_config.fingerprint_precision
                by_shard: dict[str, object] = {}
                for seed in range(64):
                    problem = make_random_problem(5, 100 + seed)
                    key = fingerprint_problem(problem, precision).key
                    by_shard.setdefault(router._ring.node_for(key), problem)
                    if len(by_shard) == len(router._shards):
                        break
                assert len(by_shard) == 2, "need one problem per shard"
                victim_id, survivor_id = sorted(by_shard)
                router._shards[victim_id]._process.terminate()
                router._shards[victim_id]._process.join(timeout=5.0)

                status, payload = post_json(
                    f"{url}/plan", problem_to_dict(by_shard[victim_id])
                )
                assert status == 500
                assert "died" in payload["error"]
                status, payload = post_json(
                    f"{url}/plan", problem_to_dict(by_shard[survivor_id])
                )
                assert status == 200
                assert sorted(payload["order"]) == list(range(5))
                status, payload = get_json(f"{url}/healthz")
                assert status == 200 and payload["status"] == "ok"

"""Tests of the :class:`PlanService` façade, its metrics and admission control."""

from __future__ import annotations

import concurrent.futures
import random
import threading
import time

import pytest

from repro.core import OrderingProblem, optimize
from repro.exceptions import AdmissionError, ServingError
from repro.serving import LatencySummary, PlanService, PlanServiceConfig, ServingMetrics


def random_problem(size: int, seed: int) -> OrderingProblem:
    """A small random problem (mirrors the helper in the top-level conftest)."""
    rng = random.Random(seed)
    costs = [rng.uniform(0.1, 5.0) for _ in range(size)]
    selectivities = [rng.uniform(0.1, 1.0) for _ in range(size)]
    rows = [
        [0.0 if i == j else rng.uniform(0.0, 4.0) for j in range(size)] for i in range(size)
    ]
    return OrderingProblem.from_parameters(costs, selectivities, rows)


@pytest.fixture
def service():
    with PlanService(PlanServiceConfig(budget_seconds=None)) as plan_service:
        yield plan_service


class TestSubmit:
    def test_cold_then_hit(self, service, four_service_problem):
        cold = service.submit(four_service_problem)
        hit = service.submit(four_service_problem)
        assert not cold.cache_hit and hit.cache_hit
        assert hit.order == cold.order
        assert hit.cost == pytest.approx(cold.cost)
        assert hit.fingerprint == cold.fingerprint
        four_service_problem.validate_plan(hit.order)

    def test_answer_is_optimal_with_unbounded_budget(self, service, four_service_problem):
        response = service.submit(four_service_problem)
        exact = optimize(four_service_problem, algorithm="branch_and_bound")
        assert response.cost == pytest.approx(exact.cost)

    def test_submit_batch_preserves_order(self, service):
        problems = [random_problem(4, seed) for seed in range(3)]
        responses = service.submit_batch(problems + problems)
        assert len(responses) == 6
        assert [r.cache_hit for r in responses] == [False, False, False, True, True, True]
        for problem, response in zip(problems, responses[3:]):
            assert response.cost == pytest.approx(problem.cost(response.order))

    def test_warm_prepopulates_the_cache(self, service):
        problems = [random_problem(5, seed) for seed in range(4)]
        assert service.warm(problems) == 4
        for problem in problems:
            assert service.submit(problem).cache_hit

    def test_disabled_cache_always_optimizes_cold(self, four_service_problem):
        config = PlanServiceConfig(budget_seconds=None, cache_enabled=False)
        with PlanService(config) as plan_service:
            responses = [plan_service.submit(four_service_problem) for _ in range(3)]
            assert [r.cache_hit for r in responses] == [False, False, False]
            assert len(plan_service.cache) == 0
            assert plan_service.warm([four_service_problem]) == 1
            assert len(plan_service.cache) == 0

    def test_closed_service_rejects_submissions(self, four_service_problem):
        plan_service = PlanService(PlanServiceConfig(budget_seconds=None))
        plan_service.close()
        with pytest.raises(ServingError):
            plan_service.submit(four_service_problem)

    def test_stats_shape(self, service, four_service_problem):
        service.submit(four_service_problem)
        stats = service.stats()
        assert stats["cache"]["size"] == 1
        assert stats["requests"]["answered"] == 1
        assert stats["admission"]["pending"] == 0
        assert stats["portfolio"]["algorithms"][0] == "greedy_min_term"


class TestAdmissionControl:
    def test_overload_is_rejected_with_admission_error(self, four_service_problem):
        config = PlanServiceConfig(budget_seconds=None, max_in_flight=1, queue_depth=0)
        with PlanService(config) as plan_service:
            release = threading.Event()
            entered = threading.Event()

            original = plan_service._answer

            def slow_answer(problem, budget, fingerprint=None):
                entered.set()
                release.wait(timeout=5.0)
                return original(problem, budget, fingerprint)

            plan_service._answer = slow_answer
            with concurrent.futures.ThreadPoolExecutor(max_workers=1) as pool:
                blocked = pool.submit(plan_service.submit, four_service_problem)
                assert entered.wait(timeout=5.0)
                with pytest.raises(AdmissionError):
                    plan_service.submit(four_service_problem)
                release.set()
                assert blocked.result(timeout=5.0).cost > 0
            assert plan_service.metrics.rejected == 1

    def test_queue_depth_admits_waiting_requests(self, four_service_problem):
        config = PlanServiceConfig(budget_seconds=None, max_in_flight=2, queue_depth=16)
        with PlanService(config) as plan_service:
            with concurrent.futures.ThreadPoolExecutor(max_workers=8) as pool:
                futures = [
                    pool.submit(plan_service.submit, four_service_problem) for _ in range(10)
                ]
                responses = [future.result(timeout=30.0) for future in futures]
            assert len(responses) == 10
            assert plan_service.metrics.rejected == 0


class TestStaleWhileRevalidate:
    def test_expired_entry_is_served_stale_and_refreshed(self, four_service_problem):
        config = PlanServiceConfig(
            budget_seconds=None, cache_ttl=0.05, stale_while_revalidate=True
        )
        with PlanService(config) as plan_service:
            cold = plan_service.submit(four_service_problem)
            assert not cold.cache_hit
            time.sleep(0.1)
            stale = plan_service.submit(four_service_problem)
            assert stale.cache_hit and stale.stale
            # The background refresh re-inserts a fresh entry.
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                response = plan_service.submit(four_service_problem)
                if response.cache_hit and not response.stale:
                    break
                time.sleep(0.02)
            else:
                pytest.fail("the stale entry was never refreshed in the background")

    def test_drifted_parameters_trigger_background_refresh(self):
        problem = random_problem(5, 11)
        # Coarse fingerprints bucket the drifted problem onto the same key.
        config = PlanServiceConfig(
            budget_seconds=None, fingerprint_precision=0, drift_threshold=0.01
        )
        with PlanService(config) as plan_service:
            plan_service.submit(problem)
            drifted = OrderingProblem.from_parameters(
                [cost * 1.04 for cost in problem.costs],
                list(problem.selectivities),
                problem.transfer.as_lists(),
            )
            response = plan_service.submit(drifted)
            if response.cache_hit:
                assert plan_service.cache.stats().revalidations >= 1


class TestStress:
    def test_no_lost_or_duplicated_responses_under_concurrency(self):
        """Satellite acceptance: many threads, every request answered exactly once."""
        problems = [random_problem(5, seed) for seed in range(6)]
        requests = 400
        config = PlanServiceConfig(
            budget_seconds=0.5, max_in_flight=4, queue_depth=requests
        )
        results: dict[int, object] = {}
        results_lock = threading.Lock()
        with PlanService(config) as plan_service:

            def worker(request_id: int) -> None:
                response = plan_service.submit(problems[request_id % len(problems)])
                with results_lock:
                    assert request_id not in results, "duplicated response"
                    results[request_id] = response

            with concurrent.futures.ThreadPoolExecutor(max_workers=6) as pool:
                list(pool.map(worker, range(requests)))

            assert sorted(results) == list(range(requests)), "lost responses"
            for request_id, response in results.items():
                problem = problems[request_id % len(problems)]
                problem.validate_plan(response.order)
                assert response.cost == pytest.approx(problem.cost(response.order))
            stats = plan_service.stats()
            assert stats["requests"]["answered"] == requests
            assert stats["cache"]["hit_rate"] > 0.9


class TestServingMetrics:
    def test_latency_summary_quantiles(self):
        # Nearest-rank: the q-quantile of n samples is the ceil(q*n)-th order
        # statistic, so of 1..100 the p50 is the 50th sample and p95 the 95th.
        summary = LatencySummary.of([float(i) for i in range(1, 101)])
        assert summary.count == 100
        assert summary.p50 == 50.0
        assert summary.p95 == 95.0
        assert summary.p99 == 99.0
        assert summary.max == 100.0
        assert LatencySummary.of([]).count == 0

    def test_latency_summary_small_populations(self):
        # A single sample is every quantile of itself.
        single = LatencySummary.of([3.0])
        assert (single.p50, single.p95, single.p99, single.max) == (3.0, 3.0, 3.0, 3.0)
        # With n=4, p95/p99 must be the maximum (rank ceil(0.95*4)=4), and the
        # p50 the 2nd order statistic — the truncation rule used to pick the
        # 3rd for p50 and could never be pinned to a rank definition.
        four = LatencySummary.of([4.0, 1.0, 3.0, 2.0])
        assert four.p50 == 2.0
        assert four.p95 == 4.0
        assert four.p99 == 4.0

    def test_snapshot_reuses_sorted_reservoir_until_dirty(self):
        metrics = ServingMetrics()
        metrics.observe("hit", 0.3, 1.0, False)
        metrics.observe("hit", 0.1, 1.0, False)
        first = metrics.snapshot()["latency"]["hit"]
        assert first["p50"] == 0.1 and first["max"] == 0.3
        # A second snapshot without new observations serves the cached sort.
        assert metrics.snapshot()["latency"]["hit"] == first
        # New observations invalidate the cache and show up in the next snapshot.
        metrics.observe("hit", 0.2, 1.0, False)
        second = metrics.snapshot()["latency"]["hit"]
        assert second["count"] == 3 and second["p50"] == 0.2

    def test_observe_rejects_unknown_source(self):
        metrics = ServingMetrics()
        with pytest.raises(ServingError):
            metrics.observe("warp", 0.1, 1.0, True)
        with pytest.raises(ServingError):
            metrics.latency("warp")

    def test_snapshot_counts(self):
        metrics = ServingMetrics()
        metrics.observe("cold", 0.5, 2.0, True)
        metrics.observe("hit", 0.001, 2.0, True)
        metrics.record_rejection()
        metrics.record_failure()
        snapshot = metrics.snapshot()
        assert snapshot["answered"] == 2
        assert snapshot["rejected"] == 1
        assert snapshot["failed"] == 1
        assert snapshot["by_source"] == {"hit": 1, "stale": 0, "cold": 1}
        assert snapshot["optimal_answers"] == 2
        assert snapshot["mean_plan_cost"] == pytest.approx(2.0)

    def test_reservoir_stays_bounded(self):
        metrics = ServingMetrics(reservoir_size=8)
        for index in range(100):
            metrics.observe("hit", float(index), 1.0, False)
        assert metrics.latency("hit").count == 8
        assert metrics.snapshot()["by_source"]["hit"] == 100


class TestKernelConfig:
    def test_unknown_kernel_is_rejected_at_config_time(self):
        with pytest.raises(ServingError):
            PlanServiceConfig(kernel="simd")

    def test_stats_report_requested_and_active_kernel(self, service):
        kernel = service.stats()["kernel"]
        assert kernel["requested"] == "auto"
        assert kernel["active"] in ("scalar", "vector")
        assert isinstance(kernel["numpy"], bool)
        assert kernel["active"] == service.active_kernel()

    def test_explicit_scalar_kernel_installs_process_default(self):
        from repro.core.vector import default_kernel, set_default_kernel

        try:
            config = PlanServiceConfig(budget_seconds=None, kernel="scalar")
            with PlanService(config) as plan_service:
                assert plan_service.active_kernel() == "scalar"
                assert default_kernel() == "scalar"
                kernel = plan_service.stats()["kernel"]
                assert kernel["requested"] == "scalar"
                assert kernel["active"] == "scalar"
        finally:
            set_default_kernel(None)

    def test_kernel_active_gauge_is_one_hot(self, service, four_service_problem):
        service.submit(four_service_problem)
        rendered = service.obs.registry.render()
        active = service.active_kernel()
        inactive = "scalar" if active == "vector" else "vector"
        assert f'repro_kernel_active{{kernel="{active}"}} 1' in rendered
        assert f'repro_kernel_active{{kernel="{inactive}"}} 0' in rendered

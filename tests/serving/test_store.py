"""Tests of the pluggable cache stores (LocalStore, SharedStore).

The acceptance-critical property — `PlanCache` semantics are identical on the
extracted `LocalStore` — is covered by `test_cache.py` passing unmodified;
here the stores are exercised directly, plus the cross-process contract of
the file-backed `SharedStore`.
"""

from __future__ import annotations

import json
import os
import random
import time

import pytest

from repro.core import OrderingProblem
from repro.exceptions import ServingError
from repro.serving import PlanCache, fingerprint_problem
from repro.serving.cache import CachedPlan
from repro.serving.store import LocalStore, SharedStore


def random_problem(size: int, seed: int) -> OrderingProblem:
    rng = random.Random(seed)
    costs = [rng.uniform(0.1, 5.0) for _ in range(size)]
    selectivities = [rng.uniform(0.1, 1.0) for _ in range(size)]
    rows = [
        [0.0 if i == j else rng.uniform(0.0, 4.0) for j in range(size)] for i in range(size)
    ]
    return OrderingProblem.from_parameters(costs, selectivities, rows)


def entry_for(problem: OrderingProblem, cost: float = 1.0, created_at: float = 0.0):
    fingerprint = fingerprint_problem(problem)
    entry = CachedPlan(
        fingerprint=fingerprint,
        positions=fingerprint.to_positions(tuple(range(problem.size))),
        cost=cost,
        algorithm="test",
        optimal=False,
        problem=problem,
        created_at=created_at,
    )
    return fingerprint.key, entry


@pytest.fixture(params=["local", "shared"])
def store(request, tmp_path):
    if request.param == "local":
        return LocalStore(capacity=3)
    return SharedStore(tmp_path / "plans", capacity=3)


class TestStoreContract:
    """Both backends honour the same CacheStore surface."""

    def test_put_get_roundtrip(self, store):
        key, entry = entry_for(random_problem(4, 0), cost=2.5)
        assert store.get(key) is None
        assert store.put(key, entry) == 0
        fetched = store.get(key)
        assert fetched is not None
        assert fetched.positions == entry.positions
        assert fetched.cost == 2.5
        assert fetched.algorithm == "test"
        assert fetched.fingerprint.key == key
        assert len(store) == 1

    def test_capacity_evicts_least_recently_used(self, store):
        entries = [entry_for(random_problem(4, seed)) for seed in range(4)]
        for key, entry in entries[:3]:
            assert store.put(key, entry) == 0
        store.touch(entries[0][0])  # the second entry becomes the LRU victim
        assert store.put(*entries[3]) == 1
        assert len(store) == 3
        assert store.get(entries[0][0]) is not None
        assert store.get(entries[1][0]) is None
        assert store.get(entries[3][0]) is not None

    def test_invalidate_and_scan_and_clear(self, store):
        first = entry_for(random_problem(4, 0))
        second = entry_for(random_problem(4, 1))
        store.put(*first)
        store.put(*second)
        assert sorted(store.scan()) == sorted([first[0], second[0]])
        assert store.invalidate(first[0])
        assert not store.invalidate(first[0])
        assert store.scan() == [second[0]]
        store.clear()
        assert len(store) == 0 and store.scan() == []

    def test_put_replaces_in_place_without_eviction(self, store):
        key, entry = entry_for(random_problem(4, 0), cost=5.0)
        store.put(key, entry)
        _, refreshed = entry_for(random_problem(4, 0), cost=3.0)
        assert store.put(key, refreshed) == 0
        assert len(store) == 1
        assert store.get(key).cost == 3.0

    def test_touch_on_missing_key_is_a_noop(self, store):
        store.touch("no-such-key")

    def test_capacity_must_be_positive(self, tmp_path):
        with pytest.raises(ServingError):
            LocalStore(capacity=0)
        with pytest.raises(ServingError):
            SharedStore(tmp_path / "x", capacity=0)

    def test_stats_hook_describes_the_backend(self, store):
        stats = store.stats()
        assert stats["backend"] in ("local", "shared")
        assert stats["capacity"] == 3


class TestSharedStore:
    def test_two_stores_on_one_directory_share_entries(self, tmp_path):
        writer = SharedStore(tmp_path / "plans", capacity=8)
        reader = SharedStore(tmp_path / "plans", capacity=8)
        problem = random_problem(5, 2)
        key, entry = entry_for(problem, cost=4.25)
        writer.put(key, entry)
        fetched = reader.get(key)
        assert fetched is not None
        assert fetched.cost == 4.25
        # The drift-reference problem survives the JSON round trip exactly.
        assert fetched.problem.costs == problem.costs
        assert fetched.problem.selectivities == problem.selectivities
        assert reader.invalidate(key)
        assert writer.get(key) is None

    def test_corrupt_entry_is_a_miss_and_gets_dropped(self, tmp_path):
        store = SharedStore(tmp_path / "plans", capacity=8)
        key, entry = entry_for(random_problem(4, 3))
        store.put(key, entry)
        (path,) = list((tmp_path / "plans").iterdir())
        path.write_text("{not json", encoding="utf-8")
        assert store.get(key) is None

    def test_version_skew_is_a_miss_and_a_put_repairs_it(self, tmp_path):
        store = SharedStore(tmp_path / "plans", capacity=8)
        key, entry = entry_for(random_problem(4, 4))
        store.put(key, entry)
        (path,) = list((tmp_path / "plans").iterdir())
        document = json.loads(path.read_text(encoding="utf-8"))
        document["v"] = 999
        path.write_text(json.dumps(document), encoding="utf-8")
        assert store.get(key) is None
        # No cleanup unlink (it could race a concurrent put); the next put
        # replaces the malformed file in place.
        store.put(key, entry)
        assert store.get(key) is not None
        assert len(store) == 1

    def test_no_temp_file_debris_after_puts(self, tmp_path):
        store = SharedStore(tmp_path / "plans", capacity=8)
        for seed in range(4):
            store.put(*entry_for(random_problem(4, seed)))
        names = [path.name for path in (tmp_path / "plans").iterdir()]
        assert all(name.endswith(".plan.json") for name in names)

    def test_plancache_semantics_on_shared_store(self, tmp_path):
        class FakeClock:
            now = 0.0

            def __call__(self) -> float:
                return self.now

        clock = FakeClock()
        cache = PlanCache(
            ttl=10.0,
            stale_while_revalidate=True,
            clock=clock,
            store=SharedStore(tmp_path / "plans", capacity=8),
        )
        problem = random_problem(4, 5)
        fingerprint = fingerprint_problem(problem)
        cache.put(
            fingerprint,
            positions=fingerprint.to_positions(tuple(range(4))),
            cost=1.0,
            algorithm="test",
            optimal=False,
            problem=problem,
        )
        assert cache.get(fingerprint).hit
        clock.now = 11.0
        lookup = cache.get(fingerprint)
        assert lookup.hit and lookup.stale
        stats = cache.stats()
        assert stats.hits == 1 and stats.stale_hits == 1 and stats.revalidations == 1
        assert cache.keys() == [fingerprint.key]

    def test_same_tick_puts_evict_in_true_lru_order(self, tmp_path):
        """Regression: equal mtimes (coarse filesystems) must not scramble LRU.

        With second-granular timestamps every entry written in the same second
        used to tie, making the eviction victim effectively random; the
        monotonic sequence tie-break restores true LRU order.
        """

        class SameTickStore(SharedStore):
            def _recency_ns(self, path):
                return 1_000_000_000  # every file lands on one timestamp tick

        store = SameTickStore(tmp_path / "plans", capacity=2)
        a = entry_for(random_problem(4, 10))
        b = entry_for(random_problem(4, 11))
        c = entry_for(random_problem(4, 12))
        store.put(*a)
        store.put(*b)
        store.touch(a[0])  # a is now more recent than b despite the mtime tie
        assert store.put(*c) == 1
        assert store.get(a[0]) is not None
        assert store.get(b[0]) is None  # b, the true LRU, was the victim
        assert store.get(c[0]) is not None

    def test_steady_state_put_does_not_rescan_the_directory(self, tmp_path):
        """Regression: eviction used to rescan the whole directory per insert."""

        class CountingStore(SharedStore):
            scans = 0

            def _entry_paths(self):
                self.scans += 1
                return super()._entry_paths()

        store = CountingStore(tmp_path / "plans", capacity=4)
        for seed in range(10):
            store.put(*entry_for(random_problem(4, seed)))
        # One scan to build the index on first use; evicting steady-state puts
        # run off the cached index without touching the directory listing.
        assert store.scans == 1
        assert len(store._index) == 4  # len(store) itself lists the directory
        # ... until the periodic forced resync (every 64 puts) bounds the
        # drift a same-timestamp-tick sibling write could have caused.
        for seed in range(10, 70):
            store.put(*entry_for(random_problem(4, seed)))
        assert store.scans == 2
        assert len(store) == 4

    def test_external_change_invalidates_the_cached_index(self, tmp_path):
        first = SharedStore(tmp_path / "plans", capacity=2)
        second = SharedStore(tmp_path / "plans", capacity=2)
        a = entry_for(random_problem(4, 13))
        b = entry_for(random_problem(4, 14))
        c = entry_for(random_problem(4, 15))
        first.put(*a)
        time.sleep(0.05)  # let the directory mtime tick past first's record
        second.put(*b)  # external to `first`: bumps the directory mtime
        time.sleep(0.05)
        # first's next put must notice b, rescan, and evict the true LRU (a).
        assert first.put(*c) == 1
        assert first.get(a[0]) is None
        assert first.get(b[0]) is not None
        assert first.get(c[0]) is not None
        assert len(first) == 2

    def test_mtime_recency_survives_processes(self, tmp_path):
        """Recency set by one store instance steers another's eviction."""
        first = SharedStore(tmp_path / "plans", capacity=2)
        second = SharedStore(tmp_path / "plans", capacity=2)
        a = entry_for(random_problem(4, 6))
        b = entry_for(random_problem(4, 7))
        c = entry_for(random_problem(4, 8))
        first.put(*a)
        first.put(*b)
        # Bump a's mtime well past b's so the other instance evicts b.
        os.utime(first._path(a[0]), times=(2_000_000_000, 2_000_000_000))
        assert second.put(*c) == 1
        assert second.get(a[0]) is not None
        assert second.get(b[0]) is None

"""Property tests for problem fingerprinting.

The contract: fingerprints are invariant under re-indexing of the same
services (the cache's whole point), sensitive to parameter changes beyond the
quantization step, and the canonical-position translation round-trips plans
between equivalent problems.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CommunicationCostMatrix, OrderingProblem, PrecedenceGraph
from repro.exceptions import ServingError
from repro.serving import fingerprint_problem, quantize


@st.composite
def problems_and_permutations(draw):
    size = draw(st.integers(2, 6))
    costs = draw(st.lists(st.floats(0.0, 5.0, allow_nan=False), min_size=size, max_size=size))
    selectivities = draw(
        st.lists(st.floats(0.1, 1.5, allow_nan=False), min_size=size, max_size=size)
    )
    flat = draw(
        st.lists(st.floats(0.0, 3.0, allow_nan=False), min_size=size * size, max_size=size * size)
    )
    rows = [[0.0 if i == j else flat[i * size + j] for j in range(size)] for i in range(size)]
    problem = OrderingProblem.from_parameters(costs, selectivities, rows)
    permutation = draw(st.permutations(list(range(size))))
    return problem, tuple(permutation)


def permute_problem(problem: OrderingProblem, permutation: tuple[int, ...]) -> OrderingProblem:
    """The same problem with services listed in ``permutation`` order."""
    services = [problem.service(index) for index in permutation]
    rows = [
        [problem.transfer_cost(permutation[i], permutation[j]) for j in range(problem.size)]
        for i in range(problem.size)
    ]
    sink = (
        [problem.sink_cost(index) for index in permutation]
        if problem.sink_transfer is not None
        else None
    )
    return OrderingProblem(services, CommunicationCostMatrix(rows), sink_transfer=sink)


class TestQuantize:
    def test_quantization_grid(self):
        assert quantize(0.1 + 0.2, 6) == quantize(0.3, 6)
        assert quantize(1.2345678, 3) == 1235
        assert quantize(0.0, 6) == 0

    def test_negative_precision_rejected(self):
        with pytest.raises(ServingError):
            quantize(1.0, -1)


class TestPermutationInvariance:
    @settings(max_examples=50, deadline=None)
    @given(problems_and_permutations())
    def test_reindexing_preserves_the_digest(self, case):
        problem, permutation = case
        permuted = permute_problem(problem, permutation)
        assert fingerprint_problem(problem).digest == fingerprint_problem(permuted).digest

    @settings(max_examples=50, deadline=None)
    @given(problems_and_permutations())
    def test_canonical_positions_translate_plans_between_equivalents(self, case):
        problem, permutation = case
        permuted = permute_problem(problem, permutation)
        original = fingerprint_problem(problem)
        mirrored = fingerprint_problem(permuted)

        order = tuple(range(problem.size))
        positions = original.to_positions(order)
        translated = mirrored.from_positions(positions)
        # The translated plan visits the same *services* (hence the same cost).
        assert [permuted.service(i).name for i in translated] == [
            problem.service(i).name for i in order
        ]
        assert permuted.cost(translated) == pytest.approx(problem.cost(order))

    def test_roundtrip_is_identity_on_the_same_problem(self, four_service_problem):
        fingerprint = fingerprint_problem(four_service_problem)
        order = (2, 0, 3, 1)
        assert fingerprint.from_positions(fingerprint.to_positions(order)) == order


class TestSensitivity:
    def test_cost_change_beyond_the_grid_changes_the_digest(self, three_service_problem):
        problem = three_service_problem
        changed = OrderingProblem.from_parameters(
            [problem.costs[0] + 0.5, *problem.costs[1:]],
            list(problem.selectivities),
            problem.transfer.as_lists(),
        )
        assert fingerprint_problem(problem).digest != fingerprint_problem(changed).digest

    def test_change_below_the_grid_is_absorbed(self, three_service_problem):
        problem = three_service_problem
        nudged = OrderingProblem.from_parameters(
            [problem.costs[0] + 1e-9, *problem.costs[1:]],
            list(problem.selectivities),
            problem.transfer.as_lists(),
        )
        assert (
            fingerprint_problem(problem, precision=3).digest
            == fingerprint_problem(nudged, precision=3).digest
        )

    def test_precision_is_part_of_the_key(self, three_service_problem):
        coarse = fingerprint_problem(three_service_problem, precision=2)
        fine = fingerprint_problem(three_service_problem, precision=8)
        assert coarse.key != fine.key

    def test_precedence_is_part_of_the_digest(self, three_service_problem):
        precedence = PrecedenceGraph(3)
        precedence.add(0, 2)
        constrained = three_service_problem.with_precedence(precedence)
        assert (
            fingerprint_problem(three_service_problem).digest
            != fingerprint_problem(constrained).digest
        )

    def test_names_only_matter_when_requested(self, three_service_problem):
        renamed = OrderingProblem.from_parameters(
            list(three_service_problem.costs),
            list(three_service_problem.selectivities),
            three_service_problem.transfer.as_lists(),
            names=["a", "b", "c"],
        )
        assert (
            fingerprint_problem(three_service_problem).digest
            == fingerprint_problem(renamed).digest
        )
        assert (
            fingerprint_problem(three_service_problem, include_names=True).digest
            != fingerprint_problem(renamed, include_names=True).digest
        )

    def test_unknown_index_in_plan_is_rejected(self, three_service_problem):
        fingerprint = fingerprint_problem(three_service_problem)
        with pytest.raises(ServingError):
            fingerprint.to_positions((0, 1, 7))
        with pytest.raises(ServingError):
            fingerprint.from_positions((0, 1, 7))

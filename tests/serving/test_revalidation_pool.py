"""Tests of pool-backed background revalidation and mp-context plumbing.

Satellite acceptance: with ``revalidation_backend="pool"``, drift/staleness
refresh optimizations run on :class:`~repro.parallel.pool.OptimizerPool`
worker processes instead of service threads, keeping refresh CPU off the
request path.
"""

from __future__ import annotations

import time

import pytest

from repro.exceptions import ServingError
from repro.serving import (
    PlanService,
    PlanServiceConfig,
    PortfolioOptions,
    fingerprint_problem,
    run_portfolio,
)


def wait_for(predicate, timeout: float = 10.0) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return False


class TestPoolRevalidation:
    def test_stale_entry_is_refreshed_on_the_worker_pool(self, four_service_problem):
        config = PlanServiceConfig(
            budget_seconds=None,
            cache_ttl=0.05,
            stale_while_revalidate=True,
            revalidation_backend="pool",
            revalidation_workers=1,
            drift_threshold=None,
        )
        with PlanService(config) as service:
            cold = service.submit(four_service_problem)
            assert not cold.cache_hit
            time.sleep(0.08)  # let the TTL lapse
            stale = service.submit(four_service_problem)
            assert stale.cache_hit and stale.stale

            key = fingerprint_problem(four_service_problem).key
            assert wait_for(lambda: key not in service._revalidating)
            assert wait_for(lambda: service.cache.stats().insertions >= 2)
            # The refresh ran on the pool, not on a service thread.
            assert service._refresh_pool is not None
            assert service._refresh_pool.stats()["tasks_submitted"] >= 1
            # The refreshed entry came from the strongest ladder member and
            # the next request is a fresh hit again.
            refreshed = service.submit(four_service_problem)
            assert refreshed.cache_hit and not refreshed.stale
            assert refreshed.algorithm == config.algorithms[-1]

    def test_refresh_walks_the_ladder_past_refusing_members(self, four_service_problem):
        config = PlanServiceConfig(
            budget_seconds=None,
            cache_ttl=0.05,
            stale_while_revalidate=True,
            revalidation_backend="pool",
            revalidation_workers=1,
            drift_threshold=None,
            algorithms=("greedy_min_term", "exhaustive"),
            # The strongest member refuses the instance size; the refresh
            # must fall through to the next ladder member, not give up.
            algorithm_options={"exhaustive": {"max_size": 2}},
        )
        with PlanService(config) as service:
            service.submit(four_service_problem)
            time.sleep(0.08)
            stale = service.submit(four_service_problem)
            assert stale.stale
            assert wait_for(lambda: service.cache.stats().insertions >= 2)
            refreshed = service.submit(four_service_problem)
            assert refreshed.cache_hit
            assert refreshed.algorithm == "greedy_min_term"

    def test_threads_backend_never_builds_a_pool(self, four_service_problem):
        config = PlanServiceConfig(
            budget_seconds=None,
            cache_ttl=0.05,
            stale_while_revalidate=True,
            revalidation_backend="threads",
            drift_threshold=None,
        )
        with PlanService(config) as service:
            service.submit(four_service_problem)
            time.sleep(0.08)
            assert service.submit(four_service_problem).stale
            assert wait_for(lambda: service.cache.stats().insertions >= 2)
            assert service._refresh_pool is None

    def test_unknown_backend_rejected(self):
        with pytest.raises(ServingError):
            PlanServiceConfig(revalidation_backend="carrier-pigeon")


class TestMpContextPlumbing:
    def test_portfolio_options_validate_the_method(self):
        with pytest.raises(ServingError):
            PortfolioOptions(mp_context="no-such-method")

    def test_process_race_runs_on_a_spawn_context(self, four_service_problem):
        """The fork-with-threads caveat's escape hatch, end to end."""
        options = PortfolioOptions(
            algorithms=("greedy_min_term", "branch_and_bound"),
            budget_seconds=None,
            backend="processes",
            mp_context="spawn",
        )
        race = run_portfolio(four_service_problem, options)
        assert "branch_and_bound" in race.results
        assert race.best.cost <= race.results["greedy_min_term"].cost + 1e-12

    def test_service_config_forwards_the_context(self, four_service_problem):
        config = PlanServiceConfig(budget_seconds=None, mp_context="spawn")
        with PlanService(config) as service:
            assert service._portfolio.options.mp_context == "spawn"
            assert service.stats()["portfolio"]["mp_context"] == "spawn"
            assert not service.submit(four_service_problem).cache_hit

"""Tests of deadline-budgeted portfolio optimization."""

from __future__ import annotations

import time

import pytest

from repro.core import optimize
from repro.core.optimizer import ALGORITHMS
from repro.exceptions import ServingError
from repro.serving import PortfolioOptimizer, PortfolioOptions, run_portfolio


class TestOptions:
    def test_empty_portfolio_rejected(self):
        with pytest.raises(ServingError):
            PortfolioOptions(algorithms=())

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ServingError):
            PortfolioOptions(algorithms=("branch_and_bound", "quantum_annealer"))

    def test_negative_budget_rejected(self):
        with pytest.raises(ServingError):
            PortfolioOptions(budget_seconds=-1.0)

    def test_duplicate_members_rejected(self):
        # The process backend tracks race members by name; duplicates would
        # orphan all but the last process of that name at the deadline.
        with pytest.raises(ServingError):
            PortfolioOptions(algorithms=("greedy_min_term", "exhaustive", "exhaustive"))


class TestRace:
    def test_best_result_is_at_least_as_good_as_every_member(self, four_service_problem):
        race = run_portfolio(four_service_problem, PortfolioOptions(budget_seconds=None))
        assert set(race.results) == {"greedy_min_term", "beam_search", "branch_and_bound"}
        for result in race.results.values():
            assert race.best.cost <= result.cost + 1e-9
        assert race.best.optimal  # branch-and-bound completed and is exact

    def test_zero_budget_still_returns_the_anytime_seed(self, four_service_problem):
        race = run_portfolio(four_service_problem, PortfolioOptions(budget_seconds=0.0))
        greedy = optimize(four_service_problem, algorithm="greedy_min_term")
        assert race.best.cost <= greedy.cost + 1e-9
        assert "greedy_min_term" in race.results

    def test_deadline_is_respected(self, four_service_problem, monkeypatch):
        slow_calls = []

        def slow_runner(problem, **options):
            slow_calls.append(problem)
            time.sleep(2.0)
            return optimize(problem, algorithm="exhaustive")

        monkeypatch.setitem(ALGORITHMS, "slow_exact", slow_runner)
        options = PortfolioOptions(
            algorithms=("greedy_min_term", "slow_exact"), budget_seconds=0.1
        )
        started = time.perf_counter()
        race = run_portfolio(four_service_problem, options)
        elapsed = time.perf_counter() - started
        assert elapsed < 1.0, "the race must return at the budget, not wait for stragglers"
        assert race.timed_out == ("slow_exact",)
        assert "slow_exact" not in race.results
        assert race.best.algorithm == "greedy_min_term"

    def test_member_errors_are_recorded_not_fatal(self, four_service_problem):
        options = PortfolioOptions(
            algorithms=("greedy_min_term", "exhaustive"),
            budget_seconds=None,
            algorithm_options={"exhaustive": {"max_size": 2}},
        )
        race = run_portfolio(four_service_problem, options)
        assert "exhaustive" in race.errors
        assert race.best.algorithm == "greedy_min_term"

    def test_invalid_member_options_are_recorded_not_raised(self, four_service_problem):
        options = PortfolioOptions(
            algorithms=("greedy_min_term", "beam_search"),
            budget_seconds=None,
            algorithm_options={"beam_search": {"bogus_option": 1}},
        )
        race = run_portfolio(four_service_problem, options)
        assert "beam_search" in race.errors
        assert "bogus_option" in race.errors["beam_search"]
        assert race.best.algorithm == "greedy_min_term"

    def test_per_algorithm_options_are_forwarded(self, four_service_problem):
        options = PortfolioOptions(
            algorithms=("greedy_min_term", "beam_search"),
            budget_seconds=None,
            algorithm_options={"beam_search": {"width": 1}},
        )
        race = run_portfolio(four_service_problem, options)
        assert "beam_search" in race.results

    def test_refinement_is_nonnegative(self, four_service_problem):
        race = run_portfolio(four_service_problem, PortfolioOptions(budget_seconds=None))
        assert race.refinement >= 0.0
        assert race.elapsed_seconds >= 0.0


class TestLifecycle:
    def test_closed_optimizer_rejects_new_races(self, four_service_problem):
        portfolio = PortfolioOptimizer(PortfolioOptions(budget_seconds=None))
        portfolio.close()
        with pytest.raises(ServingError):
            portfolio.optimize(four_service_problem)

    def test_context_manager_closes(self, four_service_problem):
        with PortfolioOptimizer(PortfolioOptions(budget_seconds=None)) as portfolio:
            race = portfolio.optimize(four_service_problem)
            assert race.best.cost > 0
        with pytest.raises(ServingError):
            portfolio.optimize(four_service_problem)

    def test_executor_is_reused_across_races(self, four_service_problem, three_service_problem):
        with PortfolioOptimizer(PortfolioOptions(budget_seconds=None)) as portfolio:
            first = portfolio.optimize(four_service_problem)
            second = portfolio.optimize(three_service_problem)
            assert first.best.plan.problem is four_service_problem
            assert second.best.plan.problem is three_service_problem

"""Tests of the asyncio front end: parity with the threaded server, slow-client
isolation, saturation behaviour, graceful shutdown (real sockets, ephemeral port)."""

from __future__ import annotations

import json
import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest
from serving_helpers import StubBackend, get_json, post_json, raw_http

from repro.exceptions import OptimizationError
from repro.serialization import problem_to_dict
from repro.serving import (
    MAX_BODY_BYTES,
    PlanService,
    PlanServiceConfig,
    serve_async,
)
from repro.serving.aserver import AsyncPlanServer, _admission_sized_workers
from repro.sharding import ShardRouter, ShardRouterConfig
from repro.workloads import credit_card_screening


@pytest.fixture
def server():
    with PlanService(PlanServiceConfig(budget_seconds=None)) as plan_service:
        with serve_async(plan_service, host="127.0.0.1", port=0) as handle:
            host, port = handle.address
            yield f"http://{host}:{port}", (host, port)


class TestEndpointParity:
    """The async server answers exactly like the threaded one."""

    def test_post_plan_answers_with_the_plan(self, server):
        url, _ = server
        problem = credit_card_screening()
        status, payload = post_json(f"{url}/plan", problem_to_dict(problem))
        assert status == 200
        assert sorted(payload["order"]) == list(range(problem.size))
        assert payload["cost"] == pytest.approx(problem.cost(payload["order"]))
        assert payload["cache_hit"] is False

    def test_second_request_hits_the_cache(self, server):
        url, _ = server
        problem = credit_card_screening()
        post_json(f"{url}/plan", problem_to_dict(problem))
        status, payload = post_json(f"{url}/plan", problem_to_dict(problem))
        assert status == 200
        assert payload["cache_hit"] is True

    def test_batch_answers_in_order_and_deduplicates(self, server):
        url, _ = server
        problem = credit_card_screening()
        document = problem_to_dict(problem)
        status, payload = post_json(
            f"{url}/plan/batch", {"problems": [document, document, document]}
        )
        assert status == 200
        responses = payload["responses"]
        assert len(responses) == 3
        assert [r["coalesced"] for r in responses] == [False, True, True]

    def test_stats_and_healthz(self, server):
        url, _ = server
        problem = credit_card_screening()
        post_json(f"{url}/plan", problem_to_dict(problem))
        post_json(f"{url}/plan", problem_to_dict(problem))
        status, payload = get_json(f"{url}/stats")
        assert status == 200
        assert payload["requests"]["answered"] == 2
        assert payload["cache"]["hits"] == 1
        status, payload = get_json(f"{url}/healthz")
        assert status == 200
        assert payload == {"status": "ok"}

    def test_error_mapping_parity(self, server):
        url, address = server
        # 400: malformed problem document and non-numeric budget.
        status, payload = post_json(f"{url}/plan", {"services": "nope"})
        assert status == 400 and "error" in payload
        status, payload = post_json(
            f"{url}/plan",
            {"problem": problem_to_dict(credit_card_screening()), "budget_seconds": "0.2"},
        )
        assert status == 400 and "budget_seconds" in payload["error"]
        # 404: unknown paths on both methods.
        assert post_json(f"{url}/nope", {})[0] == 404
        assert get_json(f"{url}/nope")[0] == 404
        # 400: framing (missing / invalid / truncated Content-Length).
        assert raw_http(address, b"POST /plan HTTP/1.1\r\nHost: x\r\n\r\n") == 400
        assert (
            raw_http(address, b"POST /plan HTTP/1.1\r\nHost: x\r\nContent-Length: no\r\n\r\n")
            == 400
        )
        assert (
            raw_http(
                address,
                b"POST /plan HTTP/1.1\r\nHost: x\r\nContent-Length: 500\r\n\r\n{\"a\":",
            )
            == 400
        )

    def test_oversized_body_is_a_413_without_reading_it(self, server):
        _, address = server
        declared = MAX_BODY_BYTES + 1
        status = raw_http(
            address,
            f"POST /plan HTTP/1.1\r\nHost: x\r\nContent-Length: {declared}\r\n\r\n".encode(),
            half_close=False,
        )
        assert status == 413

    def test_backend_failures_map_to_500(self):
        problem_document = problem_to_dict(credit_card_screening())
        for error in (OptimizationError("no plan"), RuntimeError("boom")):
            with serve_async(StubBackend(error=error), host="127.0.0.1", port=0) as handle:
                host, port = handle.address
                status, payload = post_json(
                    f"http://{host}:{port}/plan", problem_document
                )
                assert status == 500
                assert "error" in payload


class TestSaturationAndConcurrency:
    def test_executor_sized_off_admission_control(self):
        config = PlanServiceConfig(max_in_flight=3, queue_depth=5)
        with PlanService(config) as service:
            assert _admission_sized_workers(service) == 8
            server = AsyncPlanServer(service)
            assert server.max_workers == 8
            server._executor.shutdown(wait=False)
        router_config = ShardRouterConfig(shards=2, backend="inproc", service_config=config)
        with ShardRouter(router_config) as router:
            assert _admission_sized_workers(router) == 16

    def test_full_bridge_pool_answers_503_but_healthz_survives(self):
        backend = StubBackend(delay=0.6)
        with serve_async(backend, host="127.0.0.1", port=0, max_workers=1) as handle:
            host, port = handle.address
            url = f"http://{host}:{port}"
            document = problem_to_dict(credit_card_screening())
            with ThreadPoolExecutor(max_workers=2) as pool:
                first = pool.submit(post_json, f"{url}/plan", document)
                time.sleep(0.2)  # the only bridge slot is now occupied
                status, payload = post_json(f"{url}/plan", document)
                assert status == 503
                assert "over capacity" in payload["error"]
                # Liveness is answered inline on the event loop, and /stats
                # rides its own bridge lane past the saturated plan pool.
                assert get_json(f"{url}/healthz")[0] == 200
                status, payload = get_json(f"{url}/stats")
                assert status == 200 and payload == {"backend": "stub"}
                assert first.result()[0] == 200

    def test_interleaved_plan_and_batch_against_a_router(self, make_random_problem):
        config = ShardRouterConfig(
            shards=2,
            backend="inproc",
            service_config=PlanServiceConfig(
                budget_seconds=None, algorithms=("greedy_min_term",)
            ),
        )
        problems = [make_random_problem(5, seed) for seed in range(12)]
        with ShardRouter(config) as router:
            with serve_async(router, host="127.0.0.1", port=0) as handle:
                host, port = handle.address
                url = f"http://{host}:{port}"

                def one(problem):
                    return post_json(f"{url}/plan", problem_to_dict(problem))

                def batch(chunk):
                    return post_json(
                        f"{url}/plan/batch",
                        {"problems": [problem_to_dict(p) for p in chunk]},
                    )

                with ThreadPoolExecutor(max_workers=8) as pool:
                    singles = [pool.submit(one, p) for p in problems]
                    batches = [
                        pool.submit(batch, problems[i : i + 4]) for i in range(0, 12, 4)
                    ]
                    for future, problem in zip(singles, problems):
                        status, payload = future.result()
                        assert status == 200
                        assert payload["cost"] == pytest.approx(
                            problem.cost(payload["order"])
                        )
                    for future in batches:
                        status, payload = future.result()
                        assert status == 200
                        assert len(payload["responses"]) == 4

    def test_slow_client_does_not_block_fast_requests(self, server):
        url, address = server
        problem_document = problem_to_dict(credit_card_screening())
        post_json(f"{url}/plan", problem_document)  # warm the cache
        body = json.dumps(problem_document).encode()
        with socket.create_connection(address, timeout=30) as slow:
            head = (
                f"POST /plan HTTP/1.1\r\nHost: x\r\nContent-Length: {len(body)}\r\n\r\n"
            ).encode()
            slow.sendall(head + body[:10])  # stall mid-body, holding the socket
            latencies = []
            for _ in range(5):
                started = time.monotonic()
                status, _payload = post_json(f"{url}/plan", problem_document)
                latencies.append(time.monotonic() - started)
                assert status == 200
            assert max(latencies) < 5.0  # fast path unaffected by the stalled peer
            slow.sendall(body[10:])  # let the slow request complete
            status_line = slow.makefile("rb").readline().decode("latin-1")
            assert int(status_line.split()[1]) == 200


class TestGracefulShutdown:
    def test_in_flight_request_survives_graceful_close(self):
        backend = StubBackend(delay=0.4)
        handle = serve_async(backend, host="127.0.0.1", port=0)
        host, port = handle.address
        statuses: list[int] = []

        def request() -> None:
            status, _ = post_json(
                f"http://{host}:{port}/plan", problem_to_dict(credit_card_screening())
            )
            statuses.append(status)

        thread = threading.Thread(target=request)
        thread.start()
        time.sleep(0.15)  # the request is now sleeping inside the backend
        drained = handle.close(timeout=5.0, close_backend=True)
        thread.join(timeout=10.0)
        assert statuses == [200]
        assert drained
        assert backend.closed

    def test_idle_keepalive_connections_do_not_stall_the_drain(self):
        handle = serve_async(StubBackend(), host="127.0.0.1", port=0)
        host, port = handle.address
        idle = socket.create_connection((host, port), timeout=10)
        try:
            time.sleep(0.1)  # the connection is accepted and parked in readuntil
            started = time.monotonic()
            assert handle.close(timeout=5.0)
            # Idle connections are cancelled, not waited out.
            assert time.monotonic() - started < 3.0
        finally:
            idle.close()

    def test_bind_errors_reraise_in_the_caller(self):
        backend = StubBackend()
        with serve_async(backend, host="127.0.0.1", port=0) as handle:
            _, port = handle.address
            with pytest.raises(OSError):
                serve_async(backend, host="127.0.0.1", port=port)

"""End-to-end tests of the JSON/HTTP plan endpoint (real sockets, ephemeral port)."""

from __future__ import annotations

import socket
import threading
import time

import pytest
from serving_helpers import StubBackend, get_json, post_json, raw_http

from repro.serialization import problem_to_dict
from repro.serving import PlanService, PlanServiceConfig, serve
from repro.serving.http import MAX_BODY_BYTES
from repro.workloads import credit_card_screening


@pytest.fixture
def server():
    with PlanService(PlanServiceConfig(budget_seconds=None)) as plan_service:
        plan_server = serve(plan_service, host="127.0.0.1", port=0)
        plan_server.serve_in_background()
        host, port = plan_server.server_address[:2]
        try:
            yield f"http://{host}:{port}"
        finally:
            plan_server.shutdown()
            plan_server.server_close()


class TestPlanEndpoint:
    def test_post_plan_answers_with_the_plan(self, server):
        problem = credit_card_screening()
        status, payload = post_json(f"{server}/plan", problem_to_dict(problem))
        assert status == 200
        assert sorted(payload["order"]) == list(range(problem.size))
        assert payload["cost"] == pytest.approx(problem.cost(payload["order"]))
        assert payload["cache_hit"] is False
        assert set(payload) >= {"algorithm", "optimal", "fingerprint", "latency_seconds"}

    def test_second_request_hits_the_cache(self, server):
        problem = credit_card_screening()
        post_json(f"{server}/plan", problem_to_dict(problem))
        status, payload = post_json(f"{server}/plan", problem_to_dict(problem))
        assert status == 200
        assert payload["cache_hit"] is True

    def test_wrapped_document_with_budget(self, server):
        problem = credit_card_screening()
        status, payload = post_json(
            f"{server}/plan",
            {"problem": problem_to_dict(problem), "budget_seconds": 0.5},
        )
        assert status == 200
        assert sorted(payload["order"]) == list(range(problem.size))

    def test_malformed_document_is_a_400(self, server):
        status, payload = post_json(f"{server}/plan", {"services": "nope"})
        assert status == 400
        assert "error" in payload

    def test_unknown_path_is_a_404(self, server):
        status, payload = post_json(f"{server}/nope", {})
        assert status == 404
        status, payload = get_json(f"{server}/nope")
        assert status == 404


class TestBatchEndpoint:
    def test_post_batch_answers_in_order_and_deduplicates(self, server):
        problem = credit_card_screening()
        document = problem_to_dict(problem)
        status, payload = post_json(
            f"{server}/plan/batch", {"problems": [document, document, document]}
        )
        assert status == 200
        responses = payload["responses"]
        assert len(responses) == 3
        for response in responses:
            assert sorted(response["order"]) == list(range(problem.size))
            assert response["cost"] == pytest.approx(problem.cost(response["order"]))
        # One leader optimized; the structural twins rode along.
        assert [r["coalesced"] for r in responses] == [False, True, True]
        status, stats = get_json(f"{server}/stats")
        assert stats["requests"]["coalesced"] == 2

    def test_batch_with_budget_wrapper(self, server):
        problem = credit_card_screening()
        status, payload = post_json(
            f"{server}/plan/batch",
            {"problems": [problem_to_dict(problem)], "budget_seconds": 0.5},
        )
        assert status == 200
        assert len(payload["responses"]) == 1

    def test_malformed_batch_is_a_400(self, server):
        for bad in ({}, {"problems": []}, {"problems": "nope"}, {"problems": [{"services": 1}]}):
            status, payload = post_json(f"{server}/plan/batch", bad)
            assert status == 400
            assert "error" in payload

    def test_non_numeric_budget_is_a_400(self, server):
        problem_document = problem_to_dict(credit_card_screening())
        status, payload = post_json(
            f"{server}/plan/batch",
            {"problems": [problem_document], "budget_seconds": "0.2"},
        )
        assert status == 400
        assert "budget_seconds" in payload["error"]
        status, payload = post_json(
            f"{server}/plan",
            {"problem": problem_document, "budget_seconds": "0.2"},
        )
        assert status == 400
        assert "budget_seconds" in payload["error"]


class TestBodyFraming:
    """Regression: Content-Length used to be trusted blindly."""

    def address(self, server):
        host, port = server.rsplit(":", 1)
        return (host.removeprefix("http://"), int(port))

    def test_missing_content_length_is_a_400(self, server):
        status = raw_http(
            self.address(server),
            b"POST /plan HTTP/1.1\r\nHost: x\r\n\r\n",
        )
        assert status == 400

    def test_invalid_content_length_is_a_400(self, server):
        status = raw_http(
            self.address(server),
            b"POST /plan HTTP/1.1\r\nHost: x\r\nContent-Length: nope\r\n\r\n",
        )
        assert status == 400

    def test_oversized_body_is_a_413_without_reading_it(self, server):
        # Declare a body over the bound but never send it: the server must
        # answer from the header alone instead of blocking on a bounded read.
        declared = MAX_BODY_BYTES + 1
        started = time.monotonic()
        status = raw_http(
            self.address(server),
            f"POST /plan HTTP/1.1\r\nHost: x\r\nContent-Length: {declared}\r\n\r\n".encode(),
            half_close=False,
        )
        assert status == 413
        assert time.monotonic() - started < 5.0

    def test_truncated_body_is_a_400(self, server):
        status = raw_http(
            self.address(server),
            b"POST /plan HTTP/1.1\r\nHost: x\r\nContent-Length: 1000\r\n\r\n{\"a\":",
        )
        assert status == 400


class TestGracefulShutdown:
    def test_in_flight_request_survives_graceful_close(self):
        backend = StubBackend(delay=0.4)
        plan_server = serve(backend, host="127.0.0.1", port=0)
        plan_server.serve_in_background()
        host, port = plan_server.server_address[:2]
        statuses: list[int] = []

        def request() -> None:
            status, payload = post_json(
                f"http://{host}:{port}/plan", problem_to_dict(credit_card_screening())
            )
            statuses.append(status)

        thread = threading.Thread(target=request)
        thread.start()
        time.sleep(0.15)  # the request is now sleeping inside the backend
        drained = plan_server.close_gracefully(timeout=5.0, close_backend=True)
        thread.join(timeout=10.0)
        assert statuses == [200]  # the in-flight request completed first
        assert drained
        assert backend.closed  # ... and only then was the backend closed

    def test_drain_deadline_is_honoured(self):
        backend = StubBackend(delay=1.5)
        plan_server = serve(backend, host="127.0.0.1", port=0)
        plan_server.serve_in_background()
        host, port = plan_server.server_address[:2]
        thread = threading.Thread(
            target=lambda: post_json(
                f"http://{host}:{port}/plan", problem_to_dict(credit_card_screening())
            )
        )
        thread.start()
        time.sleep(0.15)
        started = time.monotonic()
        drained = plan_server.close_gracefully(timeout=0.2)
        assert not drained  # the handler outlived the deadline
        assert time.monotonic() - started < 1.0
        thread.join(timeout=10.0)

    def test_graceful_close_without_serving_just_closes(self):
        plan_server = serve(StubBackend(), host="127.0.0.1", port=0)
        assert plan_server.close_gracefully(timeout=0.5)

    def test_idle_keepalive_connection_does_not_stall_the_drain(self):
        """Regression: the drain used to count open connections, so an idle
        keep-alive handler parked between requests pinned the whole timeout."""
        import http.client

        plan_server = serve(StubBackend(), host="127.0.0.1", port=0)
        plan_server.serve_in_background()
        host, port = plan_server.server_address[:2]
        idle = http.client.HTTPConnection(host, port, timeout=10)
        try:
            idle.request("GET", "/healthz")
            idle.getresponse().read()  # answered; the connection stays open
            time.sleep(0.1)
            started = time.monotonic()
            assert plan_server.close_gracefully(timeout=5.0)  # drains clean...
            assert time.monotonic() - started < 3.0  # ...without the timeout
        finally:
            idle.close()

    def test_graceful_close_with_saturated_connection_bound(self):
        """Regression: a queued connection parked the accept loop in the slot
        acquire, so shutdown() ignored the graceful deadline entirely."""
        plan_server = serve(
            StubBackend(), host="127.0.0.1", port=0,
            max_connections=1, request_timeout=30.0,
        )
        plan_server.serve_in_background()
        address = plan_server.server_address[:2]
        stalled = socket.create_connection(address, timeout=10)
        stalled.sendall(b"POST /plan HTTP/1.1\r\nHost: x\r\nContent-Length: 100\r\n\r\n")
        time.sleep(0.15)  # the only slot is now held by a stalled handler
        queued = socket.create_connection(address, timeout=10)
        time.sleep(0.2)  # accepted, now parked waiting for a slot
        try:
            started = time.monotonic()
            drained = plan_server.close_gracefully(timeout=0.5)
            assert time.monotonic() - started < 3.0  # deadline honoured
            assert not drained  # the stalled handler outlived it
        finally:
            stalled.close()
            queued.close()


class TestStatsAndHealth:
    def test_stats_reflects_traffic(self, server):
        problem = credit_card_screening()
        post_json(f"{server}/plan", problem_to_dict(problem))
        post_json(f"{server}/plan", problem_to_dict(problem))
        status, payload = get_json(f"{server}/stats")
        assert status == 200
        assert payload["requests"]["answered"] == 2
        assert payload["cache"]["hits"] == 1

    def test_healthz(self, server):
        status, payload = get_json(f"{server}/healthz")
        assert status == 200
        assert payload == {"status": "ok"}

"""End-to-end tests of the JSON/HTTP plan endpoint (real sockets, ephemeral port)."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.serialization import problem_to_dict
from repro.serving import PlanService, PlanServiceConfig, serve
from repro.workloads import credit_card_screening


@pytest.fixture
def server():
    with PlanService(PlanServiceConfig(budget_seconds=None)) as plan_service:
        plan_server = serve(plan_service, host="127.0.0.1", port=0)
        plan_server.serve_in_background()
        host, port = plan_server.server_address[:2]
        try:
            yield f"http://{host}:{port}"
        finally:
            plan_server.shutdown()
            plan_server.server_close()


def post_json(url: str, payload: dict) -> tuple[int, dict]:
    body = json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        url, data=body, headers={"Content-Type": "application/json"}, method="POST"
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read().decode("utf-8"))


def get_json(url: str) -> tuple[int, dict]:
    try:
        with urllib.request.urlopen(url, timeout=30) as response:
            return response.status, json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read().decode("utf-8"))


class TestPlanEndpoint:
    def test_post_plan_answers_with_the_plan(self, server):
        problem = credit_card_screening()
        status, payload = post_json(f"{server}/plan", problem_to_dict(problem))
        assert status == 200
        assert sorted(payload["order"]) == list(range(problem.size))
        assert payload["cost"] == pytest.approx(problem.cost(payload["order"]))
        assert payload["cache_hit"] is False
        assert set(payload) >= {"algorithm", "optimal", "fingerprint", "latency_seconds"}

    def test_second_request_hits_the_cache(self, server):
        problem = credit_card_screening()
        post_json(f"{server}/plan", problem_to_dict(problem))
        status, payload = post_json(f"{server}/plan", problem_to_dict(problem))
        assert status == 200
        assert payload["cache_hit"] is True

    def test_wrapped_document_with_budget(self, server):
        problem = credit_card_screening()
        status, payload = post_json(
            f"{server}/plan",
            {"problem": problem_to_dict(problem), "budget_seconds": 0.5},
        )
        assert status == 200
        assert sorted(payload["order"]) == list(range(problem.size))

    def test_malformed_document_is_a_400(self, server):
        status, payload = post_json(f"{server}/plan", {"services": "nope"})
        assert status == 400
        assert "error" in payload

    def test_unknown_path_is_a_404(self, server):
        status, payload = post_json(f"{server}/nope", {})
        assert status == 404
        status, payload = get_json(f"{server}/nope")
        assert status == 404


class TestBatchEndpoint:
    def test_post_batch_answers_in_order_and_deduplicates(self, server):
        problem = credit_card_screening()
        document = problem_to_dict(problem)
        status, payload = post_json(
            f"{server}/plan/batch", {"problems": [document, document, document]}
        )
        assert status == 200
        responses = payload["responses"]
        assert len(responses) == 3
        for response in responses:
            assert sorted(response["order"]) == list(range(problem.size))
            assert response["cost"] == pytest.approx(problem.cost(response["order"]))
        # One leader optimized; the structural twins rode along.
        assert [r["coalesced"] for r in responses] == [False, True, True]
        status, stats = get_json(f"{server}/stats")
        assert stats["requests"]["coalesced"] == 2

    def test_batch_with_budget_wrapper(self, server):
        problem = credit_card_screening()
        status, payload = post_json(
            f"{server}/plan/batch",
            {"problems": [problem_to_dict(problem)], "budget_seconds": 0.5},
        )
        assert status == 200
        assert len(payload["responses"]) == 1

    def test_malformed_batch_is_a_400(self, server):
        for bad in ({}, {"problems": []}, {"problems": "nope"}, {"problems": [{"services": 1}]}):
            status, payload = post_json(f"{server}/plan/batch", bad)
            assert status == 400
            assert "error" in payload

    def test_non_numeric_budget_is_a_400(self, server):
        problem_document = problem_to_dict(credit_card_screening())
        status, payload = post_json(
            f"{server}/plan/batch",
            {"problems": [problem_document], "budget_seconds": "0.2"},
        )
        assert status == 400
        assert "budget_seconds" in payload["error"]
        status, payload = post_json(
            f"{server}/plan",
            {"problem": problem_document, "budget_seconds": "0.2"},
        )
        assert status == 400
        assert "budget_seconds" in payload["error"]


class TestStatsAndHealth:
    def test_stats_reflects_traffic(self, server):
        problem = credit_card_screening()
        post_json(f"{server}/plan", problem_to_dict(problem))
        post_json(f"{server}/plan", problem_to_dict(problem))
        status, payload = get_json(f"{server}/stats")
        assert status == 200
        assert payload["requests"]["answered"] == 2
        assert payload["cache"]["hits"] == 1

    def test_healthz(self, server):
        status, payload = get_json(f"{server}/healthz")
        assert status == 200
        assert payload == {"status": "ok"}

"""Tests of the registry-backed serving metrics: snapshot shape, reasons,
seeded-reservoir determinism."""

from __future__ import annotations

import random

import pytest

from repro.obs import MetricsRegistry
from repro.serving.metrics import LatencySummary, ServingMetrics


class TestRegistryBacking:
    def test_counters_live_in_the_shared_registry(self):
        registry = MetricsRegistry()
        metrics = ServingMetrics(registry=registry)
        metrics.observe("hit", 0.01, cost=5.0, optimal=True)
        metrics.record_rejection()
        metrics.record_failure()
        metrics.record_coalesced()
        text = registry.render()
        assert 'repro_requests_answered_total{source="hit"} 1' in text
        assert 'repro_requests_rejected_total{reason="capacity"} 1' in text
        assert "repro_requests_failed_total 1" in text
        assert "repro_requests_coalesced_total 1" in text
        assert "repro_answers_optimal_total 1" in text
        assert 'repro_request_latency_seconds_count{source="hit"} 1' in text

    def test_metrics_render_explicit_zeros_before_any_traffic(self):
        metrics = ServingMetrics()
        text = metrics.registry.render()
        for source in ServingMetrics.SOURCES:
            assert f'repro_requests_answered_total{{source="{source}"}} 0' in text
        assert 'repro_requests_rejected_total{reason="capacity"} 0' in text

    def test_snapshot_keeps_its_public_shape(self):
        metrics = ServingMetrics()
        metrics.observe("cold", 0.2, cost=10.0, optimal=False)
        snapshot = metrics.snapshot()
        assert set(snapshot) == {
            "answered",
            "rejected",
            "failed",
            "coalesced",
            "by_source",
            "rejected_by_reason",
            "optimal_answers",
            "mean_plan_cost",
            "latency",
        }
        assert snapshot["answered"] == 1
        assert snapshot["by_source"] == {"hit": 0, "stale": 0, "cold": 1}
        assert snapshot["mean_plan_cost"] == pytest.approx(10.0)
        assert snapshot["latency"]["cold"]["count"] == 1


class TestRejectionReasons:
    def test_rejections_are_counted_per_reason(self):
        metrics = ServingMetrics()
        metrics.record_rejection("queue_overflow")
        metrics.record_rejection("queue_overflow")
        metrics.record_rejection()  # defaults to "capacity"
        assert metrics.rejected == 3
        assert metrics.rejected_by_reason() == {"capacity": 1, "queue_overflow": 2}
        assert metrics.snapshot()["rejected_by_reason"] == {
            "capacity": 1,
            "queue_overflow": 2,
        }


class TestSeededReservoir:
    def test_identical_seeds_and_sequences_give_identical_quantiles(self):
        # Push well past the reservoir capacity so Algorithm R actually makes
        # seeded replacement decisions, then require bit-identical summaries.
        rng = random.Random(42)
        latencies = [rng.uniform(0.001, 1.0) for _ in range(500)]
        snapshots = []
        for _ in range(2):
            metrics = ServingMetrics(reservoir_size=32, seed=7)
            for latency in latencies:
                metrics.observe("cold", latency, cost=1.0, optimal=False)
            snapshots.append(metrics.snapshot()["latency"]["cold"])
        assert snapshots[0] == snapshots[1]

    def test_different_seeds_sample_differently(self):
        rng = random.Random(42)
        latencies = [rng.uniform(0.001, 1.0) for _ in range(500)]

        def summary(seed: int) -> dict:
            metrics = ServingMetrics(reservoir_size=32, seed=seed)
            for latency in latencies:
                metrics.observe("cold", latency, cost=1.0, optimal=False)
            return metrics.snapshot()["latency"]["cold"]

        assert summary(0) != summary(1)

    def test_below_capacity_the_population_is_kept_exactly(self):
        metrics = ServingMetrics(reservoir_size=100, seed=3)
        for latency in (0.3, 0.1, 0.2):
            metrics.observe("hit", latency, cost=1.0, optimal=False)
        summary = metrics.latency("hit")
        assert summary == LatencySummary.of([0.1, 0.2, 0.3])

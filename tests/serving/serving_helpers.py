"""HTTP helpers shared by the threaded- and async-front-end test suites."""

from __future__ import annotations

import json
import socket
import time
import urllib.error
import urllib.request

from repro.serving import PlanResponse


def post_json(url: str, payload: dict) -> tuple[int, dict]:
    body = json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        url, data=body, headers={"Content-Type": "application/json"}, method="POST"
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read().decode("utf-8"))


def get_json(url: str) -> tuple[int, dict]:
    try:
        with urllib.request.urlopen(url, timeout=30) as response:
            return response.status, json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read().decode("utf-8"))


def raw_http(address, request_bytes: bytes, *, half_close: bool = True) -> int:
    """Send raw bytes, return the response status (for framing-level tests)."""
    with socket.create_connection(address, timeout=10) as sock:
        sock.sendall(request_bytes)
        if half_close:
            sock.shutdown(socket.SHUT_WR)
        status_line = sock.makefile("rb").readline().decode("latin-1")
    return int(status_line.split()[1])


class StubBackend:
    """A minimal duck-typed backend: canned answers after a settable delay,
    or a raised ``error``."""

    def __init__(self, delay: float = 0.0, error: Exception | None = None) -> None:
        self.delay = delay
        self.error = error
        self.closed = False

    def _response(self) -> PlanResponse:
        return PlanResponse(
            order=(0,),
            service_names=("stub",),
            cost=1.0,
            algorithm="stub",
            optimal=False,
            cache_hit=False,
            stale=False,
            fingerprint="stub-fp",
            latency_seconds=self.delay,
        )

    def submit(self, problem, budget_seconds=None):
        time.sleep(self.delay)
        if self.error is not None:
            raise self.error
        return self._response()

    def optimize_batch(self, problems, budget_seconds=None):
        time.sleep(self.delay)
        if self.error is not None:
            raise self.error
        return [self._response() for _ in problems]

    def stats(self):
        return {"backend": "stub"}

    def close(self):
        self.closed = True

"""Tests of single-flight miss coalescing and batch optimization.

The stampede test is a satellite acceptance criterion: N concurrent cache
misses on one fingerprint must run exactly one optimization — the rest of
the herd waits for the leader's answer instead of each racing the portfolio.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.exceptions import ServingError
from repro.serving import PlanService, PlanServiceConfig, SingleFlight, fingerprint_problem


class TestSingleFlightPrimitive:
    def test_sequential_calls_each_lead(self):
        flight = SingleFlight()
        calls = []
        for _ in range(3):
            value, leader = flight.do("k", lambda: calls.append(1) or len(calls))
            assert leader
        assert len(calls) == 3

    def test_concurrent_calls_coalesce(self):
        flight = SingleFlight()
        release = threading.Event()
        calls = []

        def compute():
            calls.append(1)
            release.wait(timeout=5.0)
            return "answer"

        outcomes = []
        outcomes_lock = threading.Lock()

        def caller():
            outcome = flight.do("k", compute)
            with outcomes_lock:
                outcomes.append(outcome)

        leader = threading.Thread(target=caller)
        leader.start()
        while not calls:  # wait for the leader to be inside compute()
            pass
        followers = [threading.Thread(target=caller) for _ in range(3)]
        for thread in followers:
            thread.start()
        limit = time.monotonic() + 5.0
        while flight.waiting("k") < 3:  # all followers inside the flight
            assert time.monotonic() < limit, "followers never joined the flight"
            time.sleep(0.001)
        release.set()
        leader.join(timeout=5.0)
        for thread in followers:
            thread.join(timeout=5.0)

        assert len(calls) == 1, "exactly one computation per concurrent burst"
        assert [value for value, _ in outcomes] == ["answer"] * 4
        assert sum(1 for _, lead in outcomes if lead) == 1
        assert flight.in_flight() == 0

    def test_leader_error_propagates_to_followers(self):
        flight = SingleFlight()
        release = threading.Event()
        started = threading.Event()

        def explode():
            started.set()
            release.wait(timeout=5.0)
            raise ValueError("boom")

        errors = []

        def leader():
            with pytest.raises(ValueError):
                flight.do("k", explode)

        def follower():
            try:
                flight.do("k", lambda: "never")
            except ServingError as error:
                errors.append(str(error))

        leader_thread = threading.Thread(target=leader)
        leader_thread.start()
        assert started.wait(timeout=5.0)
        follower_thread = threading.Thread(target=follower)
        follower_thread.start()
        # Give the follower a moment to join the flight before releasing.
        while flight.in_flight() == 0:
            pass
        release.set()
        leader_thread.join(timeout=5.0)
        follower_thread.join(timeout=5.0)
        assert errors and "boom" in errors[0]


class TestStampede:
    def test_concurrent_misses_on_one_fingerprint_optimize_once(self, four_service_problem):
        """Satellite acceptance: N concurrent misses -> exactly one optimization."""
        herd = 8
        config = PlanServiceConfig(budget_seconds=None, max_in_flight=herd, queue_depth=herd)
        with PlanService(config) as service:
            key = fingerprint_problem(four_service_problem).key
            optimize_calls = []
            calls_lock = threading.Lock()
            barrier = threading.Barrier(herd)
            original = service._portfolio.optimize

            def counting_optimize(problem, budget_seconds=None):
                with calls_lock:
                    optimize_calls.append(threading.current_thread().name)
                # Hold the leader inside the optimization until the whole herd
                # has piled onto the flight (bounded, in case of a regression
                # where followers optimize instead of waiting).
                limit = time.monotonic() + 5.0
                while service._single_flight.waiting(key) < herd - 1 and time.monotonic() < limit:
                    time.sleep(0.001)
                return original(problem, budget_seconds=budget_seconds)

            service._portfolio.optimize = counting_optimize

            responses = []
            responses_lock = threading.Lock()

            def request():
                barrier.wait(timeout=5.0)
                response = service.submit(four_service_problem)
                with responses_lock:
                    responses.append(response)

            threads = [threading.Thread(target=request) for _ in range(herd)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30.0)

            assert len(responses) == herd
            assert len(optimize_calls) == 1, "the herd must coalesce onto one optimization"
            costs = {response.cost for response in responses}
            assert len(costs) == 1
            orders = {response.order for response in responses}
            assert len(orders) == 1
            assert sum(1 for r in responses if not r.cache_hit and not r.coalesced) == 1
            assert service.metrics.coalesced == herd - 1
            assert service.metrics.snapshot()["coalesced"] == herd - 1


class TestShardedStampede:
    def test_concurrent_misses_through_the_router_optimize_once(self, four_service_problem):
        """Satellite acceptance: a herd through the shard router still coalesces.

        Consistent-hash routing sends every request for one fingerprint to the
        same shard, so that shard's single-flight must absorb the whole herd —
        exactly one optimization across the entire tier.
        """
        from repro.sharding import ShardRouter, ShardRouterConfig

        herd = 8
        config = ShardRouterConfig(
            shards=3,
            backend="inproc",
            service_config=PlanServiceConfig(
                budget_seconds=None, max_in_flight=herd, queue_depth=herd
            ),
        )
        with ShardRouter(config) as router:
            key = fingerprint_problem(four_service_problem).key
            owner = router.shard_for(key)
            owner_service = router._shards[owner].service
            optimize_calls = []
            calls_lock = threading.Lock()

            for shard_id, shard in router._shards.items():
                service = shard.service
                original = service._portfolio.optimize

                def counting_optimize(
                    problem,
                    budget_seconds=None,
                    _original=original,
                    _shard_id=shard_id,
                ):
                    with calls_lock:
                        optimize_calls.append(_shard_id)
                    # Hold the leader until the rest of the herd has piled
                    # onto the owning shard's flight (bounded, in case of a
                    # regression where followers optimize instead of waiting).
                    limit = time.monotonic() + 5.0
                    while (
                        owner_service._single_flight.waiting(key) < herd - 1
                        and time.monotonic() < limit
                    ):
                        time.sleep(0.001)
                    return _original(problem, budget_seconds=budget_seconds)

                service._portfolio.optimize = counting_optimize

            barrier = threading.Barrier(herd)
            responses = []
            responses_lock = threading.Lock()

            def request():
                barrier.wait(timeout=5.0)
                response = router.submit(four_service_problem)
                with responses_lock:
                    responses.append(response)

            threads = [threading.Thread(target=request) for _ in range(herd)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30.0)

            assert len(responses) == herd
            assert optimize_calls == [owner], (
                "the whole herd must coalesce onto one optimization on the "
                "owning shard"
            )
            assert len({response.cost for response in responses}) == 1
            assert len({response.order for response in responses}) == 1
            assert sum(1 for r in responses if not r.cache_hit and not r.coalesced) == 1
            assert owner_service.metrics.coalesced == herd - 1


class TestOptimizeBatch:
    def test_batch_deduplicates_structural_twins(self, make_random_problem):
        problems = [make_random_problem(5, seed) for seed in range(3)]
        config = PlanServiceConfig(budget_seconds=None)
        with PlanService(config) as service:
            optimize_calls = []
            original = service._portfolio.optimize

            def counting_optimize(problem, budget_seconds=None):
                optimize_calls.append(problem)
                return original(problem, budget_seconds=budget_seconds)

            service._portfolio.optimize = counting_optimize
            responses = service.optimize_batch(problems * 3)

            assert len(optimize_calls) == 3, "one optimization per unique fingerprint"
            assert len(responses) == 9
            for index, response in enumerate(responses):
                problem = problems[index % 3]
                problem.validate_plan(response.order)
                assert response.cost == pytest.approx(problem.cost(response.order))
            leaders = [r for r in responses if not r.coalesced and not r.cache_hit]
            assert len(leaders) == 3
            assert service.metrics.coalesced == 6

    def test_batch_serves_warm_entries_from_the_cache(self, four_service_problem):
        with PlanService(PlanServiceConfig(budget_seconds=None)) as service:
            cold = service.submit(four_service_problem)
            responses = service.optimize_batch([four_service_problem] * 2)
            assert all(r.cache_hit for r in responses)
            assert all(r.cost == pytest.approx(cold.cost) for r in responses)

    def test_batch_with_cache_disabled_optimizes_every_member_cold(
        self, four_service_problem
    ):
        # cache_enabled=False is the opt-out from fingerprint-approximate
        # answers, so batch members must not share quantization-equal plans.
        config = PlanServiceConfig(budget_seconds=None, cache_enabled=False)
        with PlanService(config) as service:
            optimize_calls = []
            original = service._portfolio.optimize

            def counting_optimize(problem, budget_seconds=None):
                optimize_calls.append(problem)
                return original(problem, budget_seconds=budget_seconds)

            service._portfolio.optimize = counting_optimize
            responses = service.optimize_batch([four_service_problem] * 3)
            assert len(optimize_calls) == 3
            assert [r.cache_hit for r in responses] == [False] * 3
            assert [r.coalesced for r in responses] == [False] * 3
            assert len(service.cache) == 0

    def test_empty_batch(self, four_service_problem):
        with PlanService(PlanServiceConfig(budget_seconds=None)) as service:
            assert service.optimize_batch([]) == []

    def test_closed_service_rejects_batches(self, four_service_problem):
        service = PlanService(PlanServiceConfig(budget_seconds=None))
        service.close()
        with pytest.raises(ServingError):
            service.optimize_batch([four_service_problem])

    def test_batch_counts_one_admission_unit(self, make_random_problem):
        problems = [make_random_problem(4, seed) for seed in range(6)]
        config = PlanServiceConfig(budget_seconds=None, max_in_flight=1, queue_depth=0)
        with PlanService(config) as service:
            responses = service.optimize_batch(problems)
            assert len(responses) == 6
            assert service.metrics.rejected == 0

"""Unit tests of the LRU + TTL plan cache."""

from __future__ import annotations

import random
import threading

import pytest

from repro.core import OrderingProblem
from repro.exceptions import ServingError
from repro.serving import PlanCache, fingerprint_problem


def random_problem(size: int, seed: int) -> OrderingProblem:
    """A small random problem (mirrors the helper in the top-level conftest)."""
    rng = random.Random(seed)
    costs = [rng.uniform(0.1, 5.0) for _ in range(size)]
    selectivities = [rng.uniform(0.1, 1.0) for _ in range(size)]
    rows = [
        [0.0 if i == j else rng.uniform(0.0, 4.0) for j in range(size)] for i in range(size)
    ]
    return OrderingProblem.from_parameters(costs, selectivities, rows)


class FakeClock:
    """A manually advanced monotonic clock for deterministic TTL tests."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def store(cache: PlanCache, problem: OrderingProblem, cost: float = 1.0):
    fingerprint = fingerprint_problem(problem)
    order = tuple(range(problem.size))
    cache.put(
        fingerprint,
        positions=fingerprint.to_positions(order),
        cost=cost,
        algorithm="test",
        optimal=False,
        problem=problem,
    )
    return fingerprint


class TestLru:
    def test_capacity_evicts_least_recently_used(self):
        cache = PlanCache(capacity=2)
        first = store(cache, random_problem(4, 0))
        second = store(cache, random_problem(4, 1))
        # Touch the first entry so the second becomes the LRU victim.
        assert cache.get(first).hit
        third = store(cache, random_problem(4, 2))
        assert len(cache) == 2
        assert cache.get(first).hit
        assert cache.get(third).hit
        assert not cache.get(second).hit
        assert cache.stats().evictions == 1

    def test_put_refreshes_existing_entry_without_growing(self):
        cache = PlanCache(capacity=2)
        problem = random_problem(4, 0)
        store(cache, problem, cost=5.0)
        store(cache, problem, cost=3.0)
        assert len(cache) == 1
        lookup = cache.get(fingerprint_problem(problem))
        assert lookup.entry is not None and lookup.entry.cost == 3.0

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ServingError):
            PlanCache(capacity=0)
        with pytest.raises(ServingError):
            PlanCache(capacity=1, ttl=0.0)

    def test_position_count_must_match_fingerprint(self):
        cache = PlanCache(capacity=2)
        problem = random_problem(4, 0)
        fingerprint = fingerprint_problem(problem)
        with pytest.raises(ServingError):
            cache.put(fingerprint, (0, 1), 1.0, "test", False, problem)


class TestTtl:
    def test_expired_entries_are_misses_by_default(self):
        clock = FakeClock()
        cache = PlanCache(capacity=4, ttl=10.0, clock=clock)
        problem = random_problem(4, 1)
        fingerprint = store(cache, problem)
        clock.advance(9.0)
        assert cache.get(fingerprint).hit
        clock.advance(2.0)
        lookup = cache.get(fingerprint)
        assert not lookup.hit
        assert cache.stats().expirations == 1
        assert len(cache) == 0

    def test_stale_while_revalidate_serves_expired_entries(self):
        clock = FakeClock()
        cache = PlanCache(capacity=4, ttl=10.0, stale_while_revalidate=True, clock=clock)
        problem = random_problem(4, 2)
        fingerprint = store(cache, problem)
        clock.advance(11.0)
        lookup = cache.get(fingerprint)
        assert lookup.hit and lookup.stale
        stats = cache.stats()
        assert stats.stale_hits == 1
        assert stats.revalidations == 1
        # The entry stays until a put replaces it.
        assert len(cache) == 1
        store(cache, problem)
        assert not cache.get(fingerprint).stale

    def test_no_ttl_never_expires(self):
        clock = FakeClock()
        cache = PlanCache(capacity=4, ttl=None, clock=clock)
        fingerprint = store(cache, random_problem(4, 3))
        clock.advance(1e9)
        assert cache.get(fingerprint).hit


class TestDriftRevalidation:
    def test_drifted_problem_triggers_revalidation(self):
        cache = PlanCache(capacity=4)
        problem = random_problem(4, 4)
        fingerprint = store(cache, problem)
        entry = cache.get(fingerprint).entry
        assert entry is not None
        drifted = OrderingProblem.from_parameters(
            [cost * 2.0 + 0.1 for cost in problem.costs],
            list(problem.selectivities),
            problem.transfer.as_lists(),
        )
        assert cache.needs_revalidation(entry, drifted, drift_threshold=0.05)
        assert not cache.needs_revalidation(entry, problem, drift_threshold=0.05)
        assert cache.stats().revalidations == 1

    def test_unmatchable_service_sets_are_conservatively_revalidated(self):
        cache = PlanCache(capacity=4)
        problem = random_problem(4, 5)
        fingerprint = store(cache, problem)
        entry = cache.get(fingerprint).entry
        assert entry is not None
        renamed = OrderingProblem.from_parameters(
            list(problem.costs),
            list(problem.selectivities),
            problem.transfer.as_lists(),
            names=["p", "q", "r", "s"],
        )
        assert cache.needs_revalidation(entry, renamed, drift_threshold=0.05)


class TestCounters:
    def test_hit_rate_accounts_for_all_lookup_kinds(self):
        cache = PlanCache(capacity=4)
        problem = random_problem(4, 6)
        fingerprint = store(cache, problem)
        missing = fingerprint_problem(random_problem(5, 7))
        cache.get(fingerprint)
        cache.get(missing)
        stats = cache.stats()
        assert stats.hits == 1 and stats.misses == 1
        assert stats.lookups == 2
        assert stats.hit_rate == pytest.approx(0.5)
        assert set(stats.as_dict()) >= {"hits", "misses", "evictions", "hit_rate"}

    def test_concurrent_access_is_consistent(self):
        cache = PlanCache(capacity=16)
        problems = [random_problem(4, seed) for seed in range(8)]
        fingerprints = [store(cache, problem) for problem in problems]

        def hammer() -> None:
            for _ in range(200):
                for fingerprint, problem in zip(fingerprints, problems):
                    if not cache.get(fingerprint).hit:
                        store(cache, problem)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stats = cache.stats()
        assert stats.lookups == 4 * 200 * 8
        assert len(cache) == 8

"""Smoke tests: every shipped example runs end to end.

The examples double as documentation; these tests keep them from rotting.
Each example module is imported from its file and its ``main()`` executed with
stdout captured.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

import pytest

EXAMPLES_DIRECTORY = Path(__file__).parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIRECTORY.glob("*.py"))


def _load_example(path: Path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    assert spec is not None and spec.loader is not None
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_at_least_three_examples_ship_with_the_repository(self):
        assert len(EXAMPLE_FILES) >= 3

    @pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.stem)
    def test_example_runs_to_completion(self, path, capsys):
        module = _load_example(path)
        assert hasattr(module, "main"), f"{path.name} must expose a main() function"
        module.main()
        output = capsys.readouterr().out
        assert output.strip(), f"{path.name} produced no output"

    @pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.stem)
    def test_example_has_a_module_docstring(self, path):
        module = _load_example(path)
        assert module.__doc__ and len(module.__doc__) > 100

"""Unit tests for the validation helpers."""

from __future__ import annotations

import pytest

from repro.utils import (
    require,
    require_finite,
    require_non_negative,
    require_positive,
    require_probability,
)


class TestRequire:
    def test_passes_on_true(self):
        require(True, "never raised")

    def test_raises_with_message(self):
        with pytest.raises(ValueError, match="broken"):
            require(False, "broken")

    def test_custom_exception(self):
        with pytest.raises(KeyError):
            require(False, "broken", KeyError)


class TestNumericValidators:
    def test_require_finite_converts_to_float(self):
        assert require_finite(3, "x") == 3.0
        assert isinstance(require_finite(3, "x"), float)

    def test_require_finite_rejects_nan_and_inf(self):
        with pytest.raises(ValueError):
            require_finite(float("nan"), "x")
        with pytest.raises(ValueError):
            require_finite(float("inf"), "x")

    def test_require_finite_rejects_non_numbers(self):
        with pytest.raises(ValueError):
            require_finite("abc", "x")
        with pytest.raises(ValueError):
            require_finite(None, "x")

    def test_require_non_negative(self):
        assert require_non_negative(0.0, "x") == 0.0
        with pytest.raises(ValueError, match="x"):
            require_non_negative(-0.1, "x")

    def test_require_positive(self):
        assert require_positive(0.1, "x") == 0.1
        with pytest.raises(ValueError):
            require_positive(0.0, "x")

    def test_require_probability(self):
        assert require_probability(0.0, "p") == 0.0
        assert require_probability(1.0, "p") == 1.0
        with pytest.raises(ValueError):
            require_probability(1.01, "p")
        with pytest.raises(ValueError):
            require_probability(-0.01, "p")

    def test_custom_exception_type_propagates(self):
        class Custom(Exception):
            pass

        with pytest.raises(Custom):
            require_positive(-1.0, "x", Custom)

"""Unit tests for the table renderer."""

from __future__ import annotations

import pytest

from repro.utils import Table, format_markdown_table


class TestFormatMarkdownTable:
    def test_renders_headers_and_rows(self):
        text = format_markdown_table(["a", "b"], [[1, 2.5], ["x", True]])
        lines = text.splitlines()
        assert lines[0].startswith("| a")
        assert lines[1].startswith("|-")
        assert "2.5" in lines[2]
        assert "yes" in lines[3]

    def test_column_width_accounts_for_long_cells(self):
        text = format_markdown_table(["h"], [["a-much-longer-cell"]])
        header, separator, row = text.splitlines()
        assert len(header) == len(row)
        assert len(separator) == len(header)

    def test_row_arity_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_markdown_table(["a", "b"], [[1]])

    def test_float_format(self):
        text = format_markdown_table(["x"], [[0.123456789]], float_format=".2f")
        assert "0.12" in text


class TestTable:
    def test_add_row_positional_and_named(self):
        table = Table(["n", "cost"])
        table.add_row(3, 1.5)
        table.add_row(n=4, cost=2.5)
        assert len(table) == 2
        assert table.column("n") == [3, 4]

    def test_named_rows_require_all_columns(self):
        table = Table(["n", "cost"])
        with pytest.raises(ValueError):
            table.add_row(n=3)
        with pytest.raises(ValueError):
            table.add_row(n=3, cost=1.0, extra=2)

    def test_mixing_positional_and_named_rejected(self):
        table = Table(["n"])
        with pytest.raises(ValueError):
            table.add_row(1, n=1)

    def test_wrong_positional_arity_rejected(self):
        table = Table(["n", "cost"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_to_markdown_includes_title(self):
        table = Table(["n"], title="demo")
        table.add_row(1)
        assert table.to_markdown().startswith("### demo")

    def test_to_dicts(self):
        table = Table(["n", "cost"])
        table.add_row(5, 0.5)
        assert table.to_dicts() == [{"n": 5, "cost": 0.5}]

    def test_unknown_column_lookup(self):
        with pytest.raises(ValueError):
            Table(["a"]).column("b")

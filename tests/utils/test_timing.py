"""Unit tests for the stopwatch and duration formatting."""

from __future__ import annotations

import time

import pytest

from repro.utils import Stopwatch, format_duration


class TestStopwatch:
    def test_measures_elapsed_time(self):
        watch = Stopwatch().start()
        time.sleep(0.01)
        elapsed = watch.stop()
        assert elapsed >= 0.009

    def test_stop_without_start_returns_zero(self):
        assert Stopwatch().stop() == 0.0

    def test_accumulates_across_intervals(self):
        watch = Stopwatch()
        watch.start()
        time.sleep(0.005)
        first = watch.stop()
        watch.start()
        time.sleep(0.005)
        total = watch.stop()
        assert total > first

    def test_elapsed_while_running(self):
        watch = Stopwatch().start()
        time.sleep(0.005)
        assert watch.elapsed > 0.0
        assert watch.running
        watch.stop()
        assert not watch.running

    def test_reset(self):
        watch = Stopwatch().start()
        time.sleep(0.002)
        watch.reset()
        assert watch.elapsed == 0.0
        assert not watch.running

    def test_context_manager(self):
        with Stopwatch() as watch:
            time.sleep(0.002)
        assert watch.elapsed >= 0.001

    def test_double_start_is_idempotent(self):
        watch = Stopwatch()
        watch.start()
        watch.start()
        assert watch.running


class TestFormatDuration:
    def test_microseconds(self):
        assert format_duration(0.0000005).endswith("us")

    def test_milliseconds(self):
        assert format_duration(0.0042) == "4.20 ms"

    def test_seconds(self):
        assert format_duration(3.5) == "3.50 s"

    def test_minutes(self):
        assert format_duration(125) == "2 min 5.0 s"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_duration(-1.0)

"""Unit tests for the deterministic RNG helpers."""

from __future__ import annotations

import pytest

from repro.utils import SeedSequence, derive_rng, spawn_seeds


class TestDeriveRng:
    def test_same_inputs_same_stream(self):
        assert derive_rng(42, "a").random() == derive_rng(42, "a").random()

    def test_different_salts_different_streams(self):
        values = {derive_rng(42, salt).random() for salt in ("cost", "selectivity", "transfer", 1, 2)}
        assert len(values) == 5

    def test_different_seeds_different_streams(self):
        assert derive_rng(1, "x").random() != derive_rng(2, "x").random()

    def test_mixed_salt_types(self):
        assert derive_rng(7, "a", 3).random() == derive_rng(7, "a", 3).random()
        assert derive_rng(7, "a", 3).random() != derive_rng(7, "a", 4).random()


class TestSpawnSeeds:
    def test_deterministic_and_distinct(self):
        seeds = spawn_seeds(99, 10)
        assert seeds == spawn_seeds(99, 10)
        assert len(set(seeds)) == 10

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_seeds(1, -1)

    def test_zero_count(self):
        assert spawn_seeds(1, 0) == []


class TestSeedSequence:
    def test_sequence_is_deterministic(self):
        a = SeedSequence(5)
        b = SeedSequence(5)
        assert a.take(5) == b.take(5)

    def test_values_are_distinct(self):
        seq = SeedSequence(5)
        assert len(set(seq.take(50))) == 50

    def test_next_rng_produces_usable_generator(self):
        rng = SeedSequence(3).next_rng()
        assert 0.0 <= rng.random() < 1.0

    def test_iteration_protocol(self):
        seq = SeedSequence(11)
        iterator = iter(seq)
        first = next(iterator)
        second = next(iterator)
        assert first != second

"""Unit tests for the link cost model."""

from __future__ import annotations

import pytest

from repro.network import LinkModel, per_tuple_cost


class TestLinkModel:
    def test_block_cost_combines_latency_and_bandwidth(self):
        link = LinkModel(latency=0.01, bandwidth=1000.0)
        # 10 tuples of 100 bytes = 1000 bytes -> 1 second transmission + 10 ms latency.
        assert link.block_cost(tuple_size=100.0, block_size=10) == pytest.approx(1.01)

    def test_per_tuple_cost_amortises_latency(self):
        link = LinkModel(latency=0.1, bandwidth=float("inf"))
        single = link.per_tuple_cost(tuple_size=100.0, block_size=1)
        blocked = link.per_tuple_cost(tuple_size=100.0, block_size=100)
        assert single == pytest.approx(0.1)
        assert blocked == pytest.approx(0.001)

    def test_infinite_bandwidth_is_pure_latency(self):
        link = LinkModel(latency=0.02, bandwidth=float("inf"))
        assert link.block_cost(10_000.0, 1) == pytest.approx(0.02)

    def test_validation(self):
        with pytest.raises(ValueError):
            LinkModel(latency=-0.1, bandwidth=1.0)
        with pytest.raises(ValueError):
            LinkModel(latency=0.1, bandwidth=0.0)
        link = LinkModel(latency=0.0, bandwidth=1.0)
        with pytest.raises(ValueError):
            link.block_cost(tuple_size=0.0, block_size=1)
        with pytest.raises(ValueError):
            link.block_cost(tuple_size=1.0, block_size=0)

    def test_functional_shorthand(self):
        assert per_tuple_cost(0.01, 1e6, 1000.0, 10) == pytest.approx(
            LinkModel(0.01, 1e6).per_tuple_cost(1000.0, 10)
        )

"""Unit tests for the topology generators."""

from __future__ import annotations

import pytest

from repro.network import (
    Host,
    LinkModel,
    NetworkTopology,
    clustered_topology,
    euclidean_topology,
    random_topology,
    uniform_topology,
)


class TestNetworkTopology:
    def test_duplicate_host_names_rejected(self):
        with pytest.raises(ValueError):
            NetworkTopology([Host("a"), Host("a")])

    def test_link_lookup_and_self_link(self):
        topology = NetworkTopology([Host("a"), Host("b")])
        topology.set_link("a", "b", LinkModel(0.1, 1e6))
        assert topology.link("a", "b").latency == 0.1
        assert topology.link("a", "a").latency == 0.0
        with pytest.raises(KeyError):
            topology.link("b", "a")

    def test_symmetric_link_definition(self):
        topology = NetworkTopology([Host("a"), Host("b")])
        topology.set_link("a", "b", LinkModel(0.2, 1e6), symmetric=True)
        assert topology.link("b", "a").latency == 0.2

    def test_self_link_definition_rejected(self):
        topology = NetworkTopology([Host("a")])
        with pytest.raises(ValueError):
            topology.set_link("a", "a", LinkModel(0.1, 1e6))

    def test_unknown_host_lookup(self):
        topology = uniform_topology(2)
        with pytest.raises(KeyError):
            topology.host("missing")

    def test_per_tuple_cost_same_host_is_free(self):
        topology = uniform_topology(3)
        name = topology.host_names()[0]
        assert topology.per_tuple_cost(name, name, 1024.0) == 0.0

    def test_describe_lists_hosts(self):
        text = clustered_topology(2, 2).describe()
        assert "dc0" in text and "dc1" in text


class TestGenerators:
    def test_uniform_topology_links_every_pair(self):
        topology = uniform_topology(4, latency=0.01)
        names = topology.host_names()
        assert len(names) == 4
        for a in names:
            for b in names:
                if a != b:
                    assert topology.link(a, b).latency == 0.01

    def test_random_topology_is_seeded(self):
        a = random_topology(5, seed=3)
        b = random_topology(5, seed=3)
        c = random_topology(5, seed=4)
        pair = (a.host_names()[0], a.host_names()[1])
        assert a.link(*pair).latency == b.link(*pair).latency
        assert a.link(*pair).latency != c.link(*pair).latency

    def test_random_topology_symmetry_flag(self):
        symmetric = random_topology(4, seed=1, symmetric=True)
        names = symmetric.host_names()
        assert symmetric.link(names[0], names[1]).latency == symmetric.link(names[1], names[0]).latency
        asymmetric = random_topology(4, seed=1, symmetric=False)
        latencies = [
            (asymmetric.link(a, b).latency, asymmetric.link(b, a).latency)
            for a in names
            for b in names
            if a < b
        ]
        assert any(abs(x - y) > 1e-12 for x, y in latencies)

    def test_euclidean_topology_respects_distance_monotonicity(self):
        topology = euclidean_topology(6, seed=2, latency_per_unit=1.0, base_latency=0.0)
        hosts = topology.hosts
        import math

        for a in hosts:
            for b in hosts:
                if a.name == b.name:
                    continue
                expected = math.dist(a.position, b.position)
                assert topology.link(a.name, b.name).latency == pytest.approx(expected)

    def test_clustered_topology_intra_cheaper_than_inter(self):
        topology = clustered_topology(2, 3, seed=5, intra_latency=0.001, inter_latency=0.1)
        hosts = topology.hosts
        intra = [
            topology.link(a.name, b.name).latency
            for a in hosts
            for b in hosts
            if a.name != b.name and a.cluster == b.cluster
        ]
        inter = [
            topology.link(a.name, b.name).latency
            for a in hosts
            for b in hosts
            if a.cluster != b.cluster
        ]
        assert max(intra) < min(inter)

    def test_generator_argument_validation(self):
        with pytest.raises(ValueError):
            uniform_topology(0)
        with pytest.raises(ValueError):
            clustered_topology(0, 2)

"""Unit tests for building cost matrices from topologies and placements."""

from __future__ import annotations

import pytest

from repro.network import (
    clustered_matrix,
    clustered_topology,
    interpolate_to_uniform,
    matrix_from_topology,
    random_matrix,
    random_placement,
    uniform_topology,
)


class TestMatrixFromTopology:
    def test_same_host_pairs_cost_zero(self):
        topology = uniform_topology(2, latency=0.05)
        matrix = matrix_from_topology(topology, ["host0", "host0", "host1"])
        assert matrix.cost(0, 1) == 0.0
        assert matrix.cost(0, 2) > 0.0

    def test_per_tuple_cost_uses_block_size(self):
        topology = uniform_topology(2, latency=0.1, bandwidth=float("inf"))
        single = matrix_from_topology(topology, ["host0", "host1"], block_size=1)
        blocked = matrix_from_topology(topology, ["host0", "host1"], block_size=10)
        assert blocked.cost(0, 1) == pytest.approx(single.cost(0, 1) / 10)

    def test_unknown_host_rejected(self):
        topology = uniform_topology(2)
        with pytest.raises(KeyError):
            matrix_from_topology(topology, ["host0", "nope"])


class TestRandomPlacement:
    def test_distinct_placement_uses_unique_hosts(self):
        topology = uniform_topology(6)
        placement = random_placement(topology, 5, seed=1, distinct=True)
        assert len(set(placement)) == 5

    def test_distinct_placement_requires_enough_hosts(self):
        topology = uniform_topology(3)
        with pytest.raises(ValueError):
            random_placement(topology, 4, distinct=True)

    def test_non_distinct_placement_allows_reuse(self):
        topology = uniform_topology(2)
        placement = random_placement(topology, 6, seed=2, distinct=False)
        assert len(placement) == 6
        assert set(placement).issubset(set(topology.host_names()))

    def test_seeded(self):
        topology = uniform_topology(6)
        assert random_placement(topology, 4, seed=9) == random_placement(topology, 4, seed=9)


class TestInterpolation:
    def test_level_zero_is_uniform_with_same_mean(self):
        matrix = clustered_matrix(5, seed=3)
        uniform = interpolate_to_uniform(matrix, 0.0)
        assert uniform.is_uniform()
        assert uniform.mean_cost() == pytest.approx(matrix.mean_cost())

    def test_level_one_is_identity(self):
        matrix = clustered_matrix(5, seed=3)
        assert interpolate_to_uniform(matrix, 1.0) == matrix

    def test_mean_preserved_across_levels(self):
        matrix = clustered_matrix(6, seed=7)
        for level in (0.0, 0.3, 0.6, 1.0):
            blended = interpolate_to_uniform(matrix, level)
            assert blended.mean_cost() == pytest.approx(matrix.mean_cost())

    def test_heterogeneity_monotone_in_level(self):
        matrix = clustered_matrix(6, seed=7)
        values = [interpolate_to_uniform(matrix, level).heterogeneity() for level in (0.0, 0.5, 1.0)]
        assert values[0] <= values[1] <= values[2]

    def test_invalid_level_rejected(self):
        with pytest.raises(ValueError):
            interpolate_to_uniform(clustered_matrix(4), 1.5)


class TestSyntheticMatrices:
    def test_random_matrix_symmetry(self):
        assert random_matrix(5, seed=1, symmetric=True).is_symmetric()

    def test_random_matrix_range(self):
        matrix = random_matrix(5, seed=1, low=2.0, high=3.0)
        assert matrix.min_cost() >= 2.0
        assert matrix.max_cost() <= 3.0

    def test_random_matrix_invalid_range(self):
        with pytest.raises(ValueError):
            random_matrix(4, low=2.0, high=1.0)

    def test_clustered_matrix_structure(self):
        matrix = clustered_matrix(6, cluster_count=2, seed=2, intra_cost=0.1, inter_cost=5.0, jitter=0.0)
        # Services 0,2,4 share a cluster; 1,3,5 share the other.
        assert matrix.cost(0, 2) == pytest.approx(0.1)
        assert matrix.cost(0, 1) == pytest.approx(5.0)

    def test_clustered_matrix_seeded(self):
        assert clustered_matrix(5, seed=4) == clustered_matrix(5, seed=4)

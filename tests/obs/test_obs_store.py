"""Tests of the ring-buffer span store, tree stitching and the slow log."""

from __future__ import annotations

import pytest

from repro.exceptions import ObservabilityError
from repro.obs import SlowLog, Span, SpanStore


def _span(trace_id: str, name: str, span_id: str, parent_id=None, start=0.0, duration=0.0):
    span = Span(trace_id, name, parent_id=parent_id, span_id=span_id, start=start)
    span.duration = duration
    return span


class TestSpanStore:
    def test_ring_evicts_the_oldest_trace(self):
        store = SpanStore(capacity=2)
        for index in range(3):
            store.add(f"t{index}", [_span(f"t{index}", "http.request", f"s{index}")])
        assert store.trace_ids() == ["t1", "t2"]
        assert store.get("t0") is None
        assert len(store) == 2

    def test_adding_to_an_existing_trace_appends_and_refreshes_recency(self):
        store = SpanStore(capacity=2)
        store.add("a", [_span("a", "one", "s1")])
        store.add("b", [_span("b", "two", "s2")])
        store.add("a", [_span("a", "three", "s3")])
        store.add("c", [_span("c", "four", "s4")])  # evicts b, the stalest
        assert store.trace_ids() == ["a", "c"]
        assert [span["name"] for span in store.get("a")] == ["one", "three"]

    def test_tree_stitches_parents_children_and_orphans(self):
        store = SpanStore()
        store.add(
            "t",
            [
                _span("t", "http.request", "root", start=0.0, duration=1.0),
                _span("t", "service.submit", "svc", parent_id="root", start=0.3),
                _span("t", "cache.get", "cache", parent_id="svc", start=0.4),
                # A worker span whose parent was produced in another process
                # and never collected: it must surface as a root, not vanish.
                _span("t", "worker.optimize", "orphan", parent_id="missing", start=0.5),
                _span("t", "portfolio.race", "race", parent_id="svc", start=0.35),
            ],
        )
        tree = store.tree("t")
        assert tree["span_count"] == 5
        assert tree["duration_seconds"] == pytest.approx(1.0)
        assert [node["name"] for node in tree["roots"]] == ["http.request", "worker.optimize"]
        service = tree["roots"][0]["children"][0]
        assert service["name"] == "service.submit"
        # Children are ordered by start time.
        assert [child["name"] for child in service["children"]] == [
            "portfolio.race",
            "cache.get",
        ]

    def test_unknown_trace_is_none(self):
        store = SpanStore()
        assert store.tree("nope") is None
        assert store.get("nope") is None

    def test_capacity_must_be_positive(self):
        with pytest.raises(ObservabilityError):
            SpanStore(capacity=0)


class TestSlowLog:
    def test_records_only_breaching_spans(self):
        log = SlowLog(threshold_seconds=0.5)
        assert not log.record(_span("t", "fast", "s1", duration=0.1))
        assert log.record(_span("t", "slow", "s2", duration=0.75))
        entries = log.entries()
        assert len(entries) == 1
        assert entries[0]["name"] == "slow"
        assert entries[0]["trace_id"] == "t"
        assert entries[0]["duration_seconds"] == pytest.approx(0.75)

    def test_disabled_without_a_threshold(self):
        log = SlowLog(threshold_seconds=None)
        assert not log.record(_span("t", "slow", "s", duration=60.0))
        assert log.entries() == []

    def test_capacity_bounds_the_log(self):
        log = SlowLog(threshold_seconds=0.0, capacity=2)
        for index in range(4):
            log.record(_span("t", f"slow{index}", f"s{index}", duration=1.0))
        assert [entry["name"] for entry in log.entries()] == ["slow2", "slow3"]

    def test_negative_threshold_rejected(self):
        with pytest.raises(ObservabilityError):
            SlowLog(threshold_seconds=-1.0)

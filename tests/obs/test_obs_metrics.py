"""Tests of the metrics registry: semantics, exposition, concurrency."""

from __future__ import annotations

import math
import threading

import pytest

from repro.exceptions import ObservabilityError
from repro.obs import MetricsRegistry, labelled, parse_prometheus_text


class TestCounter:
    def test_increments_accumulate(self):
        counter = MetricsRegistry().counter("requests_total")
        counter.inc()
        counter.inc(2.5)
        assert counter.value() == 3.5

    def test_labelled_series_are_independent(self):
        counter = MetricsRegistry().counter("answered_total", labelnames=("source",))
        counter.inc(source="hit")
        counter.inc(3, source="cold")
        assert counter.value(source="hit") == 1
        assert counter.value(source="cold") == 3
        assert counter.values() == {("hit",): 1.0, ("cold",): 3.0}

    def test_cannot_decrease(self):
        counter = MetricsRegistry().counter("requests_total")
        with pytest.raises(ObservabilityError):
            counter.inc(-1)

    def test_inc_zero_pretouches_a_series(self):
        registry = MetricsRegistry()
        counter = registry.counter("rejected_total", labelnames=("reason",))
        counter.inc(0, reason="capacity")
        assert 'rejected_total{reason="capacity"} 0' in registry.render()

    def test_wrong_labels_raise(self):
        counter = MetricsRegistry().counter("answered_total", labelnames=("source",))
        with pytest.raises(ObservabilityError):
            counter.inc(shard="a")
        with pytest.raises(ObservabilityError):
            counter.inc()


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("pending")
        gauge.set(5)
        gauge.inc(2)
        gauge.dec()
        assert gauge.value() == 6


class TestHistogram:
    def test_observations_land_in_cumulative_buckets(self):
        histogram = MetricsRegistry().histogram("latency", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 0.5, 5.0):
            histogram.observe(value)
        snapshot = histogram.snapshot()
        assert snapshot["count"] == 4
        assert snapshot["sum"] == pytest.approx(6.05)
        assert snapshot["buckets"] == {0.1: 1, 1.0: 3, math.inf: 4}

    def test_buckets_must_strictly_increase(self):
        registry = MetricsRegistry()
        with pytest.raises(ObservabilityError):
            registry.histogram("bad", buckets=(1.0, 1.0))
        with pytest.raises(ObservabilityError):
            registry.histogram("worse", buckets=())


class TestRegistry:
    def test_registration_is_get_or_create(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")

    def test_kind_and_label_conflicts_raise(self):
        registry = MetricsRegistry()
        registry.counter("a", labelnames=("x",))
        with pytest.raises(ObservabilityError):
            registry.gauge("a")
        with pytest.raises(ObservabilityError):
            registry.counter("a", labelnames=("y",))

    def test_invalid_names_raise(self):
        registry = MetricsRegistry()
        with pytest.raises(ObservabilityError):
            registry.counter("1bad")
        with pytest.raises(ObservabilityError):
            registry.counter("ok", labelnames=("bad-label",))

    def test_render_round_trips_through_the_parser(self):
        registry = MetricsRegistry()
        registry.counter("answered_total", "Answers.", labelnames=("source",)).inc(
            7, source="hit"
        )
        registry.gauge("pending").set(3)
        histogram = registry.histogram("latency_seconds", buckets=(0.1, 1.0))
        histogram.observe(0.05)
        histogram.observe(0.5)
        text = registry.render()
        assert "# TYPE answered_total counter" in text
        assert "# TYPE latency_seconds histogram" in text
        parsed = parse_prometheus_text(text)
        assert parsed["answered_total"][(("source", "hit"),)] == 7
        assert parsed["pending"][()] == 3
        assert parsed["latency_seconds_count"][()] == 2
        assert parsed["latency_seconds_sum"][()] == pytest.approx(0.55)
        assert parsed["latency_seconds_bucket"][(("le", "+Inf"),)] == 2

    def test_callbacks_run_once_per_render(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("entries")
        calls = []
        registry.register_callback(lambda: (calls.append(1), gauge.set(len(calls)))[0])
        registry.render()
        registry.render()
        assert gauge.value() == 2

    def test_a_failing_callback_does_not_break_the_scrape(self):
        registry = MetricsRegistry()
        registry.counter("ok").inc()

        def explode() -> None:
            raise RuntimeError("refresh failed")

        registry.register_callback(explode)
        assert "ok 1" in registry.render()


class TestConcurrency:
    def test_counters_are_exact_under_eight_threads(self):
        counter = MetricsRegistry().counter("hammered_total", labelnames=("thread",))
        increments = 1000

        def hammer(index: int) -> None:
            for _ in range(increments):
                counter.inc(thread=index % 2)

        threads = [threading.Thread(target=hammer, args=(i,)) for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value(thread=0) == 4 * increments
        assert counter.value(thread=1) == 4 * increments
        assert sum(counter.values().values()) == 8 * increments


class TestLabelled:
    def test_collapses_one_label_dimension(self):
        samples = {
            (("shard", "a"), ("status", "200")): 2.0,
            (("shard", "a"), ("status", "503")): 1.0,
            (("shard", "b"), ("status", "200")): 4.0,
            (): 9.0,  # unlabelled samples are skipped
        }
        assert labelled(samples, "shard") == {"a": 3.0, "b": 4.0}

"""End-to-end observability: ``/metrics`` on both front ends, stitched traces.

The acceptance path of the subsystem: a traced request through a sharded,
process-backed serving stack must produce *one* span tree — front end →
router → shard process → race worker — queryable at ``GET /trace/<id>``,
and both HTTP front ends must serve the Prometheus text exposition.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.cli import main
from repro.obs import labelled, parse_prometheus_text
from repro.serialization import problem_to_dict
from repro.serving import PlanService, PlanServiceConfig, serve, serve_async
from repro.workloads import credit_card_screening

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _post(url: str, payload: dict, headers: dict | None = None) -> tuple[int, dict]:
    body = json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        url,
        data=body,
        headers={"Content-Type": "application/json", **(headers or {})},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read().decode("utf-8"))


def _get(url: str) -> tuple[int, str, str]:
    """GET returning (status, content type, raw body text)."""
    try:
        with urllib.request.urlopen(url, timeout=30) as response:
            return (
                response.status,
                response.headers.get("Content-Type", ""),
                response.read().decode("utf-8"),
            )
    except urllib.error.HTTPError as error:
        return error.code, error.headers.get("Content-Type", ""), error.read().decode("utf-8")


def _observable_config(**overrides) -> PlanServiceConfig:
    defaults = dict(
        budget_seconds=None,
        algorithms=("greedy_min_term", "branch_and_bound"),
        observability=True,
        slow_request_seconds=0.0,
    )
    defaults.update(overrides)
    return PlanServiceConfig(**defaults)


@pytest.fixture
def traced_server():
    with PlanService(_observable_config()) as plan_service:
        plan_server = serve(plan_service, host="127.0.0.1", port=0)
        plan_server.serve_in_background()
        host, port = plan_server.server_address[:2]
        try:
            yield f"http://{host}:{port}"
        finally:
            plan_server.shutdown()
            plan_server.server_close()


def _walk(node: dict, depth: int = 0):
    yield node, depth
    for child in node["children"]:
        yield from _walk(child, depth + 1)


class TestMetricsEndpoint:
    def test_threaded_server_serves_prometheus_text(self, traced_server):
        problem = credit_card_screening()
        _post(f"{traced_server}/plan", problem_to_dict(problem))
        status, content_type, text = _get(f"{traced_server}/metrics")
        assert status == 200
        assert content_type == PROMETHEUS_CONTENT_TYPE
        assert "# TYPE repro_requests_answered_total counter" in text
        parsed = parse_prometheus_text(text)
        assert parsed["repro_requests_answered_total"][(("source", "cold"),)] == 1
        assert labelled(parsed["repro_http_requests_total"], "route")["/plan"] == 1
        # The request latency histogram carries the observation.
        assert parsed["repro_request_latency_seconds_count"][(("source", "cold"),)] == 1
        # Kernel profiling feeds evaluation counters through the scrape refresh.
        assert sum(parsed["repro_kernel_evaluations_total"].values()) > 0

    def test_async_server_serves_prometheus_text(self):
        with PlanService(_observable_config()) as plan_service:
            with serve_async(plan_service, host="127.0.0.1", port=0) as handle:
                host, port = handle.address
                url = f"http://{host}:{port}"
                problem = credit_card_screening()
                status, payload = _post(
                    f"{url}/plan", problem_to_dict(problem), {"X-Trace-Id": "ad" * 16}
                )
                assert status == 200
                assert payload["trace_id"] == "ad" * 16
                status, content_type, text = _get(f"{url}/metrics")
                assert status == 200
                assert content_type == PROMETHEUS_CONTENT_TYPE
                parsed = parse_prometheus_text(text)
                assert parsed["repro_requests_answered_total"][(("source", "cold"),)] == 1
                status, _, text = _get(f"{url}/trace/{'ad' * 16}")
                assert status == 200
                assert json.loads(text)["trace_id"] == "ad" * 16

    def test_metrics_without_an_instrumented_backend_is_a_404(self):
        # A bare callable backend has no Observability bundle; the route must
        # answer 404, not crash.
        from repro.serving.http import dispatch_request

        class Bare:
            pass

        status, payload = dispatch_request(Bare(), "GET", "/metrics")
        assert status == 404


class TestTraceEndpoint:
    def test_a_trace_id_is_minted_and_queryable(self, traced_server):
        problem = credit_card_screening()
        status, payload = _post(f"{traced_server}/plan", problem_to_dict(problem))
        assert status == 200
        trace_id = payload["trace_id"]
        assert len(trace_id) == 32
        status, _, text = _get(f"{traced_server}/trace/{trace_id}")
        assert status == 200
        tree = json.loads(text)
        names = {node["name"] for root in tree["roots"] for node, _ in _walk(root)}
        assert {"http.request", "service.submit", "cache.get"} <= names

    def test_the_x_trace_id_header_is_adopted(self, traced_server):
        problem = credit_card_screening()
        trace_id = "feed" * 8
        status, payload = _post(
            f"{traced_server}/plan", problem_to_dict(problem), {"X-Trace-Id": trace_id}
        )
        assert status == 200
        assert payload["trace_id"] == trace_id
        status, _, text = _get(f"{traced_server}/trace/{trace_id}")
        assert status == 200
        assert json.loads(text)["trace_id"] == trace_id

    def test_unknown_trace_is_a_404(self, traced_server):
        status, _, _ = _get(f"{traced_server}/trace/{'0' * 32}")
        assert status == 404

    def test_slow_requests_enter_the_slow_log(self, traced_server):
        problem = credit_card_screening()
        _post(f"{traced_server}/plan", problem_to_dict(problem))
        status, _, text = _get(f"{traced_server}/slowlog")
        assert status == 200
        payload = json.loads(text)
        assert payload["threshold_seconds"] == 0.0
        assert len(payload["entries"]) >= 1
        assert payload["entries"][0]["name"] == "http.request"


class TestShardedTracePropagation:
    def test_one_stitched_tree_across_process_shards_and_race_workers(
        self, make_random_problem
    ):
        from repro.sharding import ShardRouter, ShardRouterConfig

        config = _observable_config(
            budget_seconds=2.0,
            portfolio_backend="processes",
            slow_request_seconds=None,
        )
        router_config = ShardRouterConfig(
            shards=2, backend="processes", service_config=config
        )
        with ShardRouter(router_config) as router:
            plan_server = serve(router, host="127.0.0.1", port=0)
            plan_server.serve_in_background()
            host, port = plan_server.server_address[:2]
            url = f"http://{host}:{port}"
            try:
                trace_id = "cafe" * 8
                problem = make_random_problem(5, 1)
                status, payload = _post(
                    f"{url}/plan", problem_to_dict(problem), {"X-Trace-Id": trace_id}
                )
                assert status == 200
                assert payload["trace_id"] == trace_id

                status, _, text = _get(f"{url}/trace/{trace_id}")
                assert status == 200
                tree = json.loads(text)
                assert tree["trace_id"] == trace_id

                # One tree: a single front-end root with every other span
                # stitched beneath it.
                assert [root["name"] for root in tree["roots"]] == ["http.request"]
                nodes = list(_walk(tree["roots"][0]))
                names = {node["name"] for node, _ in nodes}
                assert {
                    "http.request",
                    "router.submit",
                    "shard.submit",
                    "service.submit",
                    "portfolio.race",
                    "worker.optimize",
                } <= names

                # Every span of the tree belongs to the request's trace, and
                # timings are monotonic-consistent: a child starts no earlier
                # than its parent (one wall clock, small scheduling slack).
                by_id = {node["span_id"]: node for node, _ in nodes}
                for node, _ in nodes:
                    assert node["trace_id"] == trace_id
                    assert node["duration"] >= 0.0
                    parent = by_id.get(node["parent_id"] or "")
                    if parent is not None:
                        assert node["start"] >= parent["start"] - 0.05

                # The cross-process chain: the shard span carries its shard id
                # and sits under the router span; the race worker ran in yet
                # another process and still stitched beneath the portfolio.
                shard_span = next(node for node, _ in nodes if node["name"] == "shard.submit")
                assert shard_span["annotations"]["shard"] in router.shard_ids
                assert by_id[shard_span["parent_id"]]["name"] == "router.submit"
                worker = next(node for node, _ in nodes if node["name"] == "worker.optimize")
                assert by_id[worker["parent_id"]]["name"] == "portfolio.race"

                # The router counted the routed request against its shard, and
                # the aggregate equals the per-shard sum.
                status, _, text = _get(f"{url}/metrics")
                assert status == 200
                by_shard = labelled(
                    parse_prometheus_text(text).get("repro_router_requests_total", {}),
                    "shard",
                )
                assert sum(by_shard.values()) == 1
            finally:
                plan_server.shutdown()
                plan_server.server_close()


class TestTopCommand:
    def test_repro_top_polls_metrics_and_renders_shard_load(self, traced_server, capsys):
        problem = credit_card_screening()
        _post(f"{traced_server}/plan", problem_to_dict(problem))
        code = main(
            ["top", "--url", traced_server, "--iterations", "2", "--interval", "0.05"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert output.count("repro top —") == 2
        assert "answered=1" in output
        assert "(+0.0/s)" in output  # the second poll carries rates

    def test_repro_top_json_mode(self, traced_server, capsys):
        problem = credit_card_screening()
        _post(f"{traced_server}/plan", problem_to_dict(problem))
        code = main(
            ["top", "--url", traced_server, "--iterations", "1", "--interval", "0.05", "--json"]
        )
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["poll"] == 1
        assert document["answered"] == 1
        assert document["by_source"]["cold"] == 1

    def test_repro_top_against_a_dead_server_is_a_cli_error(self, capsys):
        code = main(["top", "--url", "http://127.0.0.1:9", "--iterations", "1"])
        assert code == 2
        assert "cannot scrape" in capsys.readouterr().err

"""Tests of trace activation, span nesting and cross-boundary handoff."""

from __future__ import annotations

import threading

from repro.obs import (
    NOOP_SPAN,
    Span,
    activate_trace,
    capture,
    current_trace,
    emit_spans,
    span_from_dict,
    trace_span,
)


class TestInactive:
    def test_trace_span_is_a_noop_without_an_activation(self):
        with trace_span("cache.get") as span:
            span.annotate(outcome="hit")
        assert span is NOOP_SPAN
        assert current_trace() is None
        assert capture() is None

    def test_emit_spans_without_an_activation_is_dropped(self):
        emit_spans([{"trace_id": "t", "span_id": "s"}])  # must not raise


class TestActivation:
    def test_mints_a_trace_id_when_none_given(self):
        with activate_trace() as active:
            assert len(active.trace_id) == 32
            assert current_trace() == (active.trace_id, None)
        assert current_trace() is None

    def test_adopts_a_caller_supplied_trace_and_parent(self):
        with activate_trace("cafe" * 8, parent_id="beef") as active:
            assert active.trace_id == "cafe" * 8
            with trace_span("shard.submit") as span:
                pass
        assert span.parent_id == "beef"

    def test_nested_spans_parent_onto_the_enclosing_span(self):
        with activate_trace() as active:
            with trace_span("service.submit") as outer:
                with trace_span("cache.get", outcome="miss") as inner:
                    pass
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert inner.annotations == {"outcome": "miss"}
        # Children finish first: the shared collection holds both.
        assert [span.name for span in active.spans] == ["cache.get", "service.submit"]
        assert all(span.trace_id == active.trace_id for span in active.spans)
        assert all(span.duration >= 0.0 for span in active.spans)

    def test_a_span_is_recorded_even_when_its_body_raises(self):
        with activate_trace() as active:
            try:
                with trace_span("optimize.cold"):
                    raise ValueError("boom")
            except ValueError:
                pass
        assert [span.name for span in active.spans] == ["optimize.cold"]


class TestHandoff:
    def test_captured_context_carries_the_trace_onto_another_thread(self):
        with activate_trace() as active:
            with trace_span("portfolio.race") as race:
                context = capture()

                def member() -> None:
                    with trace_span("portfolio.member", context=context, algorithm="greedy"):
                        pass

                worker = threading.Thread(target=member)
                worker.start()
                worker.join()
        names = {span.name: span for span in active.spans}
        assert set(names) == {"portfolio.race", "portfolio.member"}
        assert names["portfolio.member"].parent_id == race.span_id
        assert names["portfolio.member"].trace_id == active.trace_id

    def test_current_trace_collapses_to_a_wire_tuple(self):
        with activate_trace("feed" * 8):
            with trace_span("router.submit") as span:
                assert current_trace() == ("feed" * 8, span.span_id)

    def test_emit_spans_folds_remote_spans_into_the_activation(self):
        remote = Span("feed" * 8, "worker.optimize", parent_id="abc")
        remote.duration = 0.25
        with activate_trace("feed" * 8) as active:
            emit_spans([remote.to_dict()])
        assert len(active.spans) == 1
        assert active.spans[0]["name"] == "worker.optimize"


class TestWireCodec:
    def test_span_round_trips_through_its_dict_form(self):
        span = Span("feed" * 8, "shard.batch", parent_id="p1", span_id="s1", start=12.5)
        span.duration = 0.5
        span.annotate(shard="shard-1", size=3)
        rebuilt = span_from_dict(span.to_dict())
        assert rebuilt.to_dict() == span.to_dict()

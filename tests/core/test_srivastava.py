"""Unit tests for the centralized (Srivastava et al.) baseline."""

from __future__ import annotations

import pytest

from repro.core import (
    CommunicationCostMatrix,
    OrderingProblem,
    branch_and_bound,
    exhaustive_search,
    srivastava,
)
from repro.core.srivastava import SrivastavaOptimizer, selective_exchange_argument_holds


class TestSrivastavaBaseline:
    def test_optimal_with_zero_communication(self, make_random_problem):
        """Under the centralized assumptions (free communication) the baseline is optimal."""
        for seed in range(20):
            problem = make_random_problem(6, seed).with_transfer(CommunicationCostMatrix.zeros(6))
            assert srivastava(problem).cost == pytest.approx(exhaustive_search(problem).cost)

    def test_close_to_optimal_under_small_uniform_communication(self, make_random_problem):
        """With a small uniform transfer cost the centralized ordering stays near-optimal.

        It is not guaranteed to be exactly optimal because the last stage of a
        plan pays no outgoing transfer under Eq. 1, an interaction the
        communication-oblivious baseline ignores.
        """
        for seed in range(10):
            problem = make_random_problem(6, seed).with_uniform_transfer(0.05)
            optimal = exhaustive_search(problem).cost
            assert srivastava(problem).cost <= optimal * 1.25 + 1e-9

    def test_orders_selective_services_by_cost(self, make_random_problem):
        problem = make_random_problem(6, 5).with_uniform_transfer(0.5)
        order = srivastava(problem).order
        costs = [problem.costs[index] for index in order]
        assert costs == sorted(costs)

    def test_places_proliferative_services_last(self):
        problem = OrderingProblem.from_parameters(
            costs=[1.0, 2.0, 3.0],
            selectivities=[1.5, 0.5, 0.8],
            transfer=CommunicationCostMatrix.uniform(3, 1.0),
        )
        order = srivastava(problem).order
        assert order[-1] == 0  # the proliferative service comes last

    def test_suboptimal_under_heterogeneous_communication(self):
        """The decentralized-aware optimizer can strictly beat the centralized ordering."""
        problem = OrderingProblem.from_parameters(
            costs=[1.0, 1.1, 1.2],
            selectivities=[0.9, 0.9, 0.9],
            transfer=CommunicationCostMatrix(
                [[0.0, 9.0, 0.1], [9.0, 0.0, 9.0], [0.1, 9.0, 0.0]]
            ),
        )
        centralized = srivastava(problem).cost
        optimal = branch_and_bound(problem).cost
        assert centralized > optimal

    def test_never_beats_the_optimum(self, make_random_problem):
        for seed in range(15):
            problem = make_random_problem(6, seed)
            assert srivastava(problem).cost >= branch_and_bound(problem).cost - 1e-9

    def test_precedence_respected(self, constrained_problem):
        order = srivastava(constrained_problem).order
        assert order.index(0) < order.index(2)
        assert order.index(1) < order.index(3)

    def test_provable_optimality_predicate(self, make_random_problem, constrained_problem):
        free = make_random_problem(4, 0).with_transfer(CommunicationCostMatrix.zeros(4))
        assert SrivastavaOptimizer().is_provably_optimal_for(free)
        heterogeneous = make_random_problem(4, 0)
        assert not SrivastavaOptimizer().is_provably_optimal_for(heterogeneous)
        uniform_positive = make_random_problem(4, 0).with_uniform_transfer(1.0)
        assert not SrivastavaOptimizer().is_provably_optimal_for(uniform_positive)
        assert not SrivastavaOptimizer().is_provably_optimal_for(
            constrained_problem.with_transfer(CommunicationCostMatrix.zeros(5))
        )

    def test_result_not_marked_optimal(self, make_random_problem):
        assert not srivastava(make_random_problem(4, 1)).optimal


class TestExchangeArgument:
    def test_holds_on_hand_picked_values(self):
        assert selective_exchange_argument_holds(1.0, 2.0, 0.5, 0.9)
        assert selective_exchange_argument_holds(2.0, 1.0, 0.9, 0.5)  # auto-swaps
        assert selective_exchange_argument_holds(0.0, 3.0, 1.0, 1.0)

    def test_holds_on_a_grid(self):
        values = [0.0, 0.5, 1.0, 2.0, 5.0]
        sigmas = [0.1, 0.5, 0.9, 1.0]
        for cx in values:
            for cy in values:
                for sx in sigmas:
                    for sy in sigmas:
                        assert selective_exchange_argument_holds(cx, cy, sx, sy)

    def test_can_fail_for_proliferative_services(self):
        # c_x=1, c_y=2, sigma_x=3 (proliferative): cheaper-first is NOT better.
        assert not selective_exchange_argument_holds(1.0, 2.0, 3.0, 1.5)

"""Unit tests for the optimizer facade."""

from __future__ import annotations

import pytest

from repro.core import available_algorithms, compare, optimize
from repro.exceptions import OptimizationError


class TestFacade:
    def test_available_algorithms_contains_the_paper_algorithm(self):
        names = available_algorithms()
        assert "branch_and_bound" in names
        assert "exhaustive" in names
        assert "srivastava_centralized" in names
        assert len(names) >= 10

    def test_default_algorithm_is_branch_and_bound(self, four_service_problem):
        result = optimize(four_service_problem)
        assert result.algorithm == "branch_and_bound"
        assert result.optimal

    def test_unknown_algorithm_raises(self, four_service_problem):
        with pytest.raises(OptimizationError):
            optimize(four_service_problem, algorithm="quantum_annealer")

    def test_options_are_forwarded(self, four_service_problem):
        result = optimize(four_service_problem, algorithm="branch_and_bound", use_lemma3=False)
        assert result.optimal
        seeded = optimize(four_service_problem, algorithm="random", seed=3)
        assert seeded.order == optimize(four_service_problem, algorithm="random", seed=3).order

    def test_srivastava_rejects_options(self, four_service_problem):
        with pytest.raises(OptimizationError):
            optimize(four_service_problem, algorithm="srivastava_centralized", seed=1)

    def test_exact_algorithms_agree(self, four_service_problem):
        costs = {
            name: optimize(four_service_problem, algorithm=name).cost
            for name in ("branch_and_bound", "exhaustive", "dynamic_programming")
        }
        assert max(costs.values()) == pytest.approx(min(costs.values()))

    def test_compare_runs_selected_algorithms(self, four_service_problem):
        results = compare(
            four_service_problem, algorithms=["branch_and_bound", "greedy_cheapest_cost"]
        )
        assert set(results) == {"branch_and_bound", "greedy_cheapest_cost"}
        assert results["greedy_cheapest_cost"].cost >= results["branch_and_bound"].cost - 1e-9

    def test_compare_defaults_to_every_algorithm(self, three_service_problem):
        results = compare(three_service_problem)
        assert set(results) == set(available_algorithms())
        optimal = results["branch_and_bound"].cost
        for result in results.values():
            assert result.cost >= optimal - 1e-9

    def test_compare_reports_per_algorithm_errors_without_aborting(self, four_service_problem):
        # srivastava_centralized rejects every option and beam_search rejects
        # unknown keywords, but branch_and_bound accepts use_lemma3 — the
        # comparison must still return its result alongside the errors.
        results = compare(
            four_service_problem,
            algorithms=["branch_and_bound", "srivastava_centralized", "beam_search"],
            use_lemma3=True,
        )
        assert set(results) == {"branch_and_bound", "srivastava_centralized", "beam_search"}
        assert results["branch_and_bound"].optimal
        assert isinstance(results["srivastava_centralized"], OptimizationError)
        assert isinstance(results["beam_search"], OptimizationError)

    def test_compare_with_unknown_algorithm_reports_the_error(self, three_service_problem):
        results = compare(three_service_problem, algorithms=["branch_and_bound", "nope"])
        assert results["branch_and_bound"].optimal
        assert isinstance(results["nope"], OptimizationError)

"""Unit tests for Plan and PartialPlan."""

from __future__ import annotations

import pytest

from repro.core import PartialPlan
from repro.exceptions import InvalidPlanError


class TestPlan:
    def test_plan_cost_matches_problem_cost(self, three_service_problem):
        plan = three_service_problem.plan([0, 1, 2])
        assert plan.cost == pytest.approx(three_service_problem.cost([0, 1, 2]))

    def test_service_names_in_order(self, three_service_problem):
        plan = three_service_problem.plan([2, 0, 1])
        assert plan.service_names == ("WS2", "WS0", "WS1")

    def test_str_uses_arrows(self, three_service_problem):
        assert str(three_service_problem.plan([0, 1, 2])) == "WS0 -> WS1 -> WS2"

    def test_position_of(self, three_service_problem):
        plan = three_service_problem.plan([2, 0, 1])
        assert plan.position_of(0) == 1
        assert plan.position_of(2) == 0

    def test_position_of_unknown_service(self, three_service_problem):
        plan = three_service_problem.plan([0, 1, 2])
        with pytest.raises(InvalidPlanError):
            plan.position_of(7)

    def test_describe_marks_bottleneck(self, three_service_problem):
        plan = three_service_problem.plan([0, 1, 2])
        description = plan.describe()
        assert "bottleneck" in description
        assert "WS0" in description

    def test_len_and_iteration(self, three_service_problem):
        plan = three_service_problem.plan([1, 2, 0])
        assert len(plan) == 3
        assert list(plan) == [1, 2, 0]

    def test_bottleneck_stage(self, three_service_problem):
        plan = three_service_problem.plan([0, 1, 2])
        assert plan.bottleneck_stage().position == 0


class TestPartialPlan:
    def test_empty_plan(self, three_service_problem):
        partial = PartialPlan.empty(three_service_problem)
        assert partial.is_empty
        assert partial.size == 0
        assert partial.epsilon == 0.0
        assert partial.output_rate == 1.0
        assert partial.remaining() == [0, 1, 2]
        assert partial.last is None

    def test_extend_updates_rates(self, three_service_problem):
        partial = PartialPlan.empty(three_service_problem).extend(0)
        assert partial.order == (0,)
        assert partial.output_rate == pytest.approx(0.5)
        assert partial.prefix_products == (1.0,)
        # Only the processing part counts while the successor is unknown.
        assert partial.epsilon == pytest.approx(2.0)

    def test_extend_settles_previous_term(self, three_service_problem):
        partial = PartialPlan.empty(three_service_problem).extend(0).extend(1)
        # The term of service 0 is now settled: 2 + 0.5*t(0,1) = 2.5.
        assert partial.epsilon == pytest.approx(2.5)
        assert partial.bottleneck_position == 0

    def test_complete_partial_matches_problem_cost(self, three_service_problem):
        for order in ((0, 1, 2), (2, 1, 0), (1, 0, 2)):
            partial = PartialPlan.from_order(three_service_problem, order)
            assert partial.is_complete
            assert partial.epsilon == pytest.approx(three_service_problem.cost(order))

    def test_epsilon_monotone_under_extension(self, make_random_problem):
        for seed in range(20):
            problem = make_random_problem(6, seed)
            partial = PartialPlan.empty(problem)
            previous = partial.epsilon
            for index in range(6):
                partial = partial.extend(index)
                assert partial.epsilon >= previous - 1e-12
                previous = partial.epsilon

    def test_extend_rejects_duplicates(self, three_service_problem):
        partial = PartialPlan.empty(three_service_problem).extend(0)
        with pytest.raises(InvalidPlanError):
            partial.extend(0)

    def test_extend_rejects_out_of_range(self, three_service_problem):
        with pytest.raises(InvalidPlanError):
            PartialPlan.empty(three_service_problem).extend(5)

    def test_allowed_extensions_respect_precedence(self, constrained_problem):
        partial = PartialPlan.empty(constrained_problem)
        # Services 2 and 3 are blocked by their predecessors 0 and 1.
        assert partial.allowed_extensions() == [0, 1, 4]
        partial = partial.extend(0)
        assert partial.allowed_extensions() == [1, 2, 4]

    def test_to_plan_requires_completion(self, three_service_problem):
        partial = PartialPlan.empty(three_service_problem).extend(0)
        with pytest.raises(InvalidPlanError):
            partial.to_plan()
        full = partial.extend(1).extend(2)
        assert full.to_plan().order == (0, 1, 2)

    def test_sink_transfer_included_only_in_final_term(self, three_service_problem):
        problem = three_service_problem.with_sink_transfer([0.0, 0.0, 10.0])
        partial = PartialPlan.from_order(problem, (0, 1, 2))
        assert partial.epsilon == pytest.approx(problem.cost((0, 1, 2)))
        # With the expensive sink hop on service 2 the final term dominates:
        # 0.45 * (4 + 0.3 * 10) = 3.15 > 2.5.
        assert partial.epsilon == pytest.approx(3.15)

    def test_extend_all_and_str(self, three_service_problem):
        partial = PartialPlan.empty(three_service_problem).extend_all([2, 0])
        assert partial.order == (2, 0)
        assert "WS2" in str(partial)
        assert str(PartialPlan.empty(three_service_problem)) == "(empty)"

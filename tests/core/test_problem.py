"""Unit tests for OrderingProblem."""

from __future__ import annotations

import pytest

from repro.core import CommunicationCostMatrix, OrderingProblem, PrecedenceGraph, Service
from repro.exceptions import InvalidPlanError, InvalidProblemError


class TestConstruction:
    def test_from_parameters_defaults_names(self, three_service_problem):
        assert [s.name for s in three_service_problem.services] == ["WS0", "WS1", "WS2"]
        assert three_service_problem.size == 3

    def test_explicit_services(self):
        services = [Service("a", cost=1.0, selectivity=0.5), Service("b", cost=2.0, selectivity=0.6)]
        problem = OrderingProblem(services, CommunicationCostMatrix.uniform(2, 1.0))
        assert problem.service_index("b") == 1
        assert problem.service(0).name == "a"

    def test_duplicate_names_rejected(self):
        services = [Service("a", cost=1.0, selectivity=0.5), Service("a", cost=2.0, selectivity=0.6)]
        with pytest.raises(InvalidProblemError):
            OrderingProblem(services, CommunicationCostMatrix.uniform(2, 1.0))

    def test_matrix_size_mismatch_rejected(self):
        services = [Service("a", cost=1.0, selectivity=0.5)]
        with pytest.raises(InvalidProblemError):
            OrderingProblem(services, CommunicationCostMatrix.uniform(2, 1.0))

    def test_empty_service_list_rejected(self):
        with pytest.raises(InvalidProblemError):
            OrderingProblem([], CommunicationCostMatrix.uniform(1, 0.0))

    def test_precedence_size_mismatch_rejected(self):
        services = [Service("a", cost=1.0, selectivity=0.5), Service("b", cost=1.0, selectivity=0.5)]
        with pytest.raises(InvalidProblemError):
            OrderingProblem(
                services, CommunicationCostMatrix.uniform(2, 1.0), precedence=PrecedenceGraph(3)
            )

    def test_sink_transfer_validation(self):
        with pytest.raises(InvalidProblemError):
            OrderingProblem.from_parameters(
                [1.0, 2.0], [0.5, 0.6], CommunicationCostMatrix.uniform(2, 1.0), sink_transfer=[1.0]
            )
        with pytest.raises(InvalidProblemError):
            OrderingProblem.from_parameters(
                [1.0, 2.0],
                [0.5, 0.6],
                CommunicationCostMatrix.uniform(2, 1.0),
                sink_transfer=[1.0, -2.0],
            )

    def test_mismatched_parameter_lengths_rejected(self):
        with pytest.raises(InvalidProblemError):
            OrderingProblem.from_parameters([1.0, 2.0], [0.5], CommunicationCostMatrix.uniform(2, 1.0))
        with pytest.raises(InvalidProblemError):
            OrderingProblem.from_parameters(
                [1.0, 2.0], [0.5, 0.5], CommunicationCostMatrix.uniform(2, 1.0), names=["only-one"]
            )

    def test_unknown_service_lookup(self, three_service_problem):
        with pytest.raises(InvalidProblemError):
            three_service_problem.service_index("nope")


class TestPredicates:
    def test_all_selective(self, three_service_problem, proliferative_problem):
        assert three_service_problem.all_selective
        assert not proliferative_problem.all_selective

    def test_uniform_transfer_detection(self):
        problem = OrderingProblem.from_parameters(
            [1.0, 2.0], [0.5, 0.6], CommunicationCostMatrix.uniform(2, 3.0)
        )
        assert problem.has_uniform_transfer

    def test_precedence_flag(self, constrained_problem, three_service_problem):
        assert constrained_problem.has_precedence_constraints
        assert not three_service_problem.has_precedence_constraints


class TestPlansAndCosts:
    def test_plan_validation_accepts_permutations(self, three_service_problem):
        plan = three_service_problem.plan([2, 0, 1])
        assert plan.order == (2, 0, 1)

    def test_plan_rejects_incomplete(self, three_service_problem):
        with pytest.raises(InvalidPlanError):
            three_service_problem.plan([0, 1])

    def test_plan_rejects_duplicates(self, three_service_problem):
        with pytest.raises(InvalidPlanError):
            three_service_problem.plan([0, 1, 1])

    def test_plan_rejects_precedence_violation(self, constrained_problem):
        with pytest.raises(InvalidPlanError):
            constrained_problem.plan([2, 0, 1, 3, 4])

    def test_plan_from_names(self, three_service_problem):
        plan = three_service_problem.plan_from_names(["WS1", "WS0", "WS2"])
        assert plan.order == (1, 0, 2)

    def test_cost_matches_stage_costs(self, four_service_problem):
        order = (3, 0, 1, 2)
        stages = four_service_problem.stage_costs(order)
        assert four_service_problem.cost(order) == pytest.approx(max(s.total for s in stages))
        assert four_service_problem.bottleneck_stage(order).total == pytest.approx(
            four_service_problem.cost(order)
        )

    def test_sink_cost_default_zero(self, three_service_problem):
        assert three_service_problem.sink_cost(1) == 0.0

    def test_transfer_cost_accessor(self, three_service_problem):
        assert three_service_problem.transfer_cost(0, 2) == 5.0


class TestCopyHelpers:
    def test_with_uniform_transfer_preserves_mean(self, four_service_problem):
        uniform = four_service_problem.with_uniform_transfer()
        assert uniform.has_uniform_transfer
        assert uniform.transfer.mean_cost() == pytest.approx(
            four_service_problem.transfer.mean_cost()
        )
        # Services unchanged.
        assert uniform.costs == four_service_problem.costs

    def test_with_uniform_transfer_explicit_value(self, four_service_problem):
        uniform = four_service_problem.with_uniform_transfer(7.0)
        assert uniform.transfer.cost(0, 1) == 7.0

    def test_with_transfer_requires_matching_size(self, four_service_problem):
        with pytest.raises(InvalidProblemError):
            four_service_problem.with_transfer(CommunicationCostMatrix.uniform(3, 1.0))

    def test_with_precedence(self, three_service_problem):
        graph = PrecedenceGraph(3, edges=[(0, 1)])
        constrained = three_service_problem.with_precedence(graph)
        assert constrained.has_precedence_constraints
        assert not three_service_problem.has_precedence_constraints

    def test_with_sink_transfer(self, three_service_problem):
        problem = three_service_problem.with_sink_transfer([1.0, 2.0, 3.0])
        assert problem.sink_cost(2) == 3.0
        assert problem.cost((0, 1, 2)) >= three_service_problem.cost((0, 1, 2))

    def test_describe_contains_services(self, credit_card_problem):
        text = credit_card_problem.describe()
        assert "card_lookup" in text
        assert "4 services" in text

"""Unit tests for OptimizationResult and SearchStatistics."""

from __future__ import annotations

import pytest

from repro.core import OptimizationResult, SearchStatistics, branch_and_bound


class TestSearchStatistics:
    def test_defaults_are_zero(self):
        stats = SearchStatistics()
        assert stats.nodes_expanded == 0
        assert stats.plans_evaluated == 0
        assert stats.elapsed_seconds == 0.0
        assert stats.extra == {}

    def test_merge_adds_counters(self):
        a = SearchStatistics(nodes_expanded=3, plans_evaluated=1, extra={"x": 2})
        b = SearchStatistics(nodes_expanded=4, lemma2_closures=2, extra={"x": 5, "y": "label"})
        merged = a.merge(b)
        assert merged.nodes_expanded == 7
        assert merged.plans_evaluated == 1
        assert merged.lemma2_closures == 2
        assert merged.extra["x"] == 7
        assert merged.extra["y"] == "label"
        # Originals untouched.
        assert a.nodes_expanded == 3

    def test_as_dict_flattens_extra(self):
        stats = SearchStatistics(nodes_expanded=2, extra={"dp_states": 11})
        data = stats.as_dict()
        assert data["nodes_expanded"] == 2
        assert data["dp_states"] == 11


class TestOptimizationResult:
    def test_consistency_check_rejects_wrong_cost(self, three_service_problem):
        plan = three_service_problem.plan([0, 1, 2])
        with pytest.raises(ValueError):
            OptimizationResult(plan=plan, cost=plan.cost + 1.0, algorithm="x", optimal=False)

    def test_accessors(self, three_service_problem):
        plan = three_service_problem.plan([2, 0, 1])
        result = OptimizationResult(plan=plan, cost=plan.cost, algorithm="manual", optimal=False)
        assert result.order == (2, 0, 1)
        assert "manual" in result.describe()
        assert "heuristic" in result.describe()

    def test_as_dict_round_trip(self, four_service_problem):
        result = branch_and_bound(four_service_problem)
        data = result.as_dict()
        assert data["algorithm"] == "branch_and_bound"
        assert data["optimal"] is True
        assert data["order"] == list(result.order)
        assert data["nodes_expanded"] == result.statistics.nodes_expanded

    def test_describe_mentions_optimality(self, four_service_problem):
        result = branch_and_bound(four_service_problem)
        assert "optimal" in result.describe()

"""Tests for the multi-threaded-service relaxation (thread folding).

The paper's restricted setting assumes single-threaded services and notes the
solution applies "with minor modifications" when that is relaxed.  The
relaxation is implemented by folding thread counts into an equivalent
single-threaded problem; these tests check the folding algebra and
cross-validate it against the simulator, which models threads natively.
"""

from __future__ import annotations

import pytest

from repro.core import CommunicationCostMatrix, OrderingProblem, Service, branch_and_bound
from repro.simulation import SimulationConfig, simulate_plan


def _threaded_problem() -> OrderingProblem:
    services = [
        Service("ingest", cost=1.0, selectivity=0.8, host="a", threads=1),
        Service("heavy", cost=6.0, selectivity=0.5, host="b", threads=3),
        Service("light", cost=1.5, selectivity=0.6, host="c", threads=1),
    ]
    transfer = CommunicationCostMatrix(
        [[0.0, 0.5, 2.0], [0.5, 0.0, 1.0], [2.0, 1.0, 0.0]]
    )
    return OrderingProblem(services, transfer, name="threaded")


class TestThreadFolding:
    def test_single_threaded_problem_is_returned_unchanged(self, four_service_problem):
        assert four_service_problem.with_threads_folded() is four_service_problem

    def test_folded_costs_and_transfers_are_scaled(self):
        problem = _threaded_problem()
        folded = problem.with_threads_folded()
        heavy = folded.service_index("heavy")
        assert folded.costs[heavy] == pytest.approx(2.0)  # 6.0 / 3 threads
        assert folded.transfer_cost(heavy, folded.service_index("light")) == pytest.approx(1.0 / 3)
        # Other services and incoming links are untouched.
        ingest = folded.service_index("ingest")
        assert folded.costs[ingest] == pytest.approx(1.0)
        assert folded.transfer_cost(ingest, heavy) == pytest.approx(0.5)
        assert all(service.threads == 1 for service in folded.services)

    def test_folding_changes_the_optimal_order_when_threads_absorb_a_bottleneck(self):
        problem = _threaded_problem()
        naive = branch_and_bound(problem)  # treats 'heavy' as a 6.0-cost single thread
        folded = branch_and_bound(problem.with_threads_folded())
        # With three threads the heavy service is effectively cheap, so it no
        # longer needs to be shielded behind the strongest filters.
        assert folded.cost <= naive.cost + 1e-9

    def test_simulator_matches_the_folded_prediction(self):
        """The DES models threads natively; Eq. 1 on the folded problem predicts it."""
        problem = _threaded_problem()
        folded = problem.with_threads_folded()
        order = branch_and_bound(folded).order
        report = simulate_plan(problem, order, SimulationConfig(tuple_count=3000))
        assert report.normalized_makespan == pytest.approx(folded.cost(order), rel=0.05)

    def test_folding_preserves_precedence_and_sink(self):
        base = _threaded_problem()
        from repro.core import PrecedenceGraph

        problem = base.with_precedence(PrecedenceGraph(3, edges=[(0, 1)])).with_sink_transfer(
            [3.0, 3.0, 3.0]
        )
        folded = problem.with_threads_folded()
        assert folded.has_precedence_constraints
        heavy = folded.service_index("heavy")
        assert folded.sink_cost(heavy) == pytest.approx(1.0)  # 3.0 / 3 threads

"""Unit tests for the subset dynamic-programming baseline."""

from __future__ import annotations

import pytest

from repro.core import DynamicProgrammingOptimizer, dynamic_programming, exhaustive_search
from repro.exceptions import ProblemTooLargeError


class TestDynamicProgramming:
    def test_matches_exhaustive_on_fixtures(
        self, three_service_problem, four_service_problem, proliferative_problem
    ):
        for problem in (three_service_problem, four_service_problem, proliferative_problem):
            assert dynamic_programming(problem).cost == pytest.approx(
                exhaustive_search(problem).cost
            )

    def test_matches_exhaustive_on_random_instances(self, make_random_problem):
        for seed in range(25):
            problem = make_random_problem(6, seed, selectivity_range=(0.2, 1.8))
            assert dynamic_programming(problem).cost == pytest.approx(
                exhaustive_search(problem).cost
            )

    def test_matches_exhaustive_with_precedence(self, constrained_problem):
        assert dynamic_programming(constrained_problem).cost == pytest.approx(
            exhaustive_search(constrained_problem).cost
        )

    def test_matches_exhaustive_with_sink_transfer(self, make_random_problem):
        problem = make_random_problem(5, 17).with_sink_transfer([1.0, 0.0, 2.0, 5.0, 0.5])
        assert dynamic_programming(problem).cost == pytest.approx(exhaustive_search(problem).cost)

    def test_returned_plan_achieves_reported_cost(self, make_random_problem):
        problem = make_random_problem(7, 3)
        result = dynamic_programming(problem)
        assert problem.cost(result.order) == pytest.approx(result.cost)
        assert sorted(result.order) == list(range(7))

    def test_state_count_is_reported(self, four_service_problem):
        result = dynamic_programming(four_service_problem)
        assert result.statistics.extra["dp_states"] > 0
        # The DP touches far fewer states than n! permutations on larger inputs,
        # but for n=4 it is at most 2^4 * 4 = 64.
        assert result.statistics.extra["dp_states"] <= 64

    def test_size_guard(self, make_random_problem):
        problem = make_random_problem(5, 0)
        with pytest.raises(ProblemTooLargeError):
            DynamicProgrammingOptimizer(max_size=4).optimize(problem)

    def test_invalid_max_size(self):
        with pytest.raises(ValueError):
            DynamicProgrammingOptimizer(max_size=0)

    def test_precedence_with_single_feasible_order(self, make_random_problem):
        from repro.core import PrecedenceGraph

        problem = make_random_problem(4, 2)
        chain = PrecedenceGraph.chain([3, 1, 0, 2], size=4)
        constrained = problem.with_precedence(chain)
        result = dynamic_programming(constrained)
        assert result.order == (3, 1, 0, 2)

"""Unit and integration tests for the branch-and-bound optimizer."""

from __future__ import annotations

import pytest

from repro.core import (
    BranchAndBoundOptimizer,
    BranchAndBoundOptions,
    SuccessorOrder,
    branch_and_bound,
    exhaustive_search,
)
from repro.core.vector import numpy_available
from repro.exceptions import OptimizationError, SearchLimitExceededError

needs_numpy = pytest.mark.skipif(
    not numpy_available(), reason="the vector kernel requires numpy"
)


class TestOptions:
    def test_defaults_reproduce_paper_algorithm(self):
        options = BranchAndBoundOptions()
        assert options.use_bound_pruning and options.use_lemma2 and options.use_lemma3
        assert options.successor_order == SuccessorOrder.CHEAPEST_TRANSFER

    def test_lemma3_requires_lemma2(self):
        with pytest.raises(ValueError):
            BranchAndBoundOptions(use_lemma2=False, use_lemma3=True)

    def test_lemma3_requires_cheapest_transfer_order(self):
        with pytest.raises(ValueError):
            BranchAndBoundOptions(use_lemma3=True, successor_order=SuccessorOrder.INDEX)

    def test_unknown_successor_order_rejected(self):
        with pytest.raises(ValueError):
            BranchAndBoundOptions(successor_order="bogus")

    def test_limits_must_be_positive(self):
        with pytest.raises(ValueError):
            BranchAndBoundOptions(node_limit=0)
        with pytest.raises(ValueError):
            BranchAndBoundOptions(time_limit=0.0)


class TestCorrectness:
    def test_two_services_hand_checked(self, two_service_problem):
        result = branch_and_bound(two_service_problem)
        assert result.order == (0, 1)
        assert result.cost == pytest.approx(2.5)
        assert result.optimal

    def test_matches_exhaustive_on_fixtures(
        self, three_service_problem, four_service_problem, proliferative_problem
    ):
        for problem in (three_service_problem, four_service_problem, proliferative_problem):
            assert branch_and_bound(problem).cost == pytest.approx(exhaustive_search(problem).cost)

    def test_matches_exhaustive_on_random_instances(self, make_random_problem):
        for seed in range(30):
            problem = make_random_problem(6, seed)
            assert branch_and_bound(problem).cost == pytest.approx(
                exhaustive_search(problem).cost
            )

    def test_matches_exhaustive_with_proliferative_services(self, make_random_problem):
        for seed in range(20):
            problem = make_random_problem(6, seed, selectivity_range=(0.3, 2.5))
            assert branch_and_bound(problem).cost == pytest.approx(
                exhaustive_search(problem).cost
            )

    def test_matches_exhaustive_with_precedence(self, constrained_problem):
        assert branch_and_bound(constrained_problem).cost == pytest.approx(
            exhaustive_search(constrained_problem).cost
        )

    def test_matches_exhaustive_with_sink_transfer(self, make_random_problem):
        for seed in range(10):
            problem = make_random_problem(5, seed).with_sink_transfer([0.5 * seed, 1.0, 2.0, 0.0, 3.0])
            assert branch_and_bound(problem).cost == pytest.approx(
                exhaustive_search(problem).cost
            )

    def test_every_rule_combination_is_optimal(self, make_random_problem):
        configurations = [
            BranchAndBoundOptions(),
            BranchAndBoundOptions(use_lemma3=False),
            BranchAndBoundOptions(use_lemma2=False, use_lemma3=False),
            BranchAndBoundOptions(use_bound_pruning=False, use_lemma2=False, use_lemma3=False),
            BranchAndBoundOptions(seed_incumbent=False),
            BranchAndBoundOptions(
                use_lemma2=False, use_lemma3=False, successor_order=SuccessorOrder.INDEX
            ),
            BranchAndBoundOptions(
                use_lemma2=True, use_lemma3=False, successor_order=SuccessorOrder.CHEAPEST_TERM
            ),
        ]
        for seed in range(10):
            problem = make_random_problem(6, seed, selectivity_range=(0.2, 1.6))
            reference = exhaustive_search(problem).cost
            for options in configurations:
                assert branch_and_bound(problem, options).cost == pytest.approx(reference)

    def test_single_service_problem(self, make_random_problem):
        problem = make_random_problem(1, 3)
        result = branch_and_bound(problem)
        assert result.order == (0,)
        assert result.cost == pytest.approx(problem.cost((0,)))

    def test_plan_is_valid_permutation(self, make_random_problem):
        problem = make_random_problem(7, 99)
        result = branch_and_bound(problem)
        assert sorted(result.order) == list(range(7))

    def test_credit_card_scenario_prefers_cheap_local_hops(self, credit_card_problem):
        result = branch_and_bound(credit_card_problem)
        assert result.cost == pytest.approx(exhaustive_search(credit_card_problem).cost)

    def test_document_scenario_respects_precedence(self, document_problem):
        result = branch_and_bound(document_problem)
        order = result.order
        decrypt = document_problem.service_index("decrypt")
        assert order.index(decrypt) < order.index(document_problem.service_index("pii_scrubber"))
        assert order.index(decrypt) < order.index(
            document_problem.service_index("content_classifier")
        )


class TestStatisticsAndLimits:
    def test_statistics_are_populated(self, four_service_problem):
        result = branch_and_bound(four_service_problem)
        stats = result.statistics
        assert stats.nodes_expanded > 0
        assert stats.elapsed_seconds >= 0.0
        assert "seed_cost" in stats.extra

    def test_pruning_reduces_explored_nodes(self, make_random_problem):
        totals = {"full": 0, "stripped": 0}
        for seed in range(8):
            problem = make_random_problem(7, seed, cost_range=(0.0, 1.0), transfer_range=(0.0, 3.0))
            totals["full"] += branch_and_bound(problem).statistics.nodes_expanded
            stripped = BranchAndBoundOptions(
                use_lemma2=False, use_lemma3=False, successor_order=SuccessorOrder.INDEX
            )
            totals["stripped"] += branch_and_bound(problem, stripped).statistics.nodes_expanded
        assert totals["full"] < totals["stripped"]

    def test_node_limit_enforced(self, make_random_problem):
        problem = make_random_problem(8, 5, cost_range=(0.0, 0.2), selectivity_range=(0.9, 1.0))
        options = BranchAndBoundOptions(node_limit=3, seed_incumbent=False)
        with pytest.raises(SearchLimitExceededError):
            BranchAndBoundOptimizer(options).optimize(problem)

    def test_lemma2_closures_counted(self, make_random_problem):
        closures = 0
        for seed in range(10):
            problem = make_random_problem(6, seed)
            closures += branch_and_bound(problem).statistics.lemma2_closures
        assert closures >= 0  # counter exists; positive on most workloads

    def test_infeasible_constraints_surface_as_error(self, three_service_problem):
        # A precedence graph over a different size is rejected at problem build
        # time, so simulate infeasibility via a node limit of zero instead.
        with pytest.raises(ValueError):
            BranchAndBoundOptions(node_limit=-1)

    def test_convenience_wrapper_accepts_overrides(self, four_service_problem):
        result = branch_and_bound(four_service_problem, use_lemma3=False)
        assert result.optimal


class TestVectorKernelParity:
    """The batch successor scoring must be indistinguishable from the scalar path."""

    @staticmethod
    def _run(problem, kernel, **overrides):
        options = BranchAndBoundOptions(kernel=kernel, **overrides)
        return BranchAndBoundOptimizer(options).optimize(problem)

    @staticmethod
    def _assert_identical(scalar, vector):
        assert vector.plan.order == scalar.plan.order
        assert vector.cost == scalar.cost  # exact ==, not approx
        s, v = scalar.statistics, vector.statistics
        # Identical exploration order means identical pruning, node for node.
        assert v.nodes_expanded == s.nodes_expanded
        assert v.pruned_by_bound == s.pruned_by_bound
        assert v.lemma2_closures == s.lemma2_closures
        assert v.lemma3_prunes == s.lemma3_prunes
        assert v.plans_evaluated == s.plans_evaluated
        assert v.incumbent_updates == s.incumbent_updates
        assert s.extra["kernel"] == "scalar" and v.extra["kernel"] == "vector"

    @needs_numpy
    def test_cheapest_transfer_parity(self, make_random_problem):
        for seed in range(6):
            problem = make_random_problem(9, seed)
            self._assert_identical(
                self._run(problem, "scalar"), self._run(problem, "vector")
            )

    @needs_numpy
    def test_cheapest_term_parity(self, make_random_problem):
        for seed in range(6):
            problem = make_random_problem(8, seed)
            self._assert_identical(
                self._run(
                    problem,
                    "scalar",
                    successor_order=SuccessorOrder.CHEAPEST_TERM,
                    use_lemma3=False,
                ),
                self._run(
                    problem,
                    "vector",
                    successor_order=SuccessorOrder.CHEAPEST_TERM,
                    use_lemma3=False,
                ),
            )

    @needs_numpy
    def test_parity_under_precedence_constraints(self, constrained_problem):
        self._assert_identical(
            self._run(constrained_problem, "scalar"),
            self._run(constrained_problem, "vector"),
        )

    @needs_numpy
    def test_vector_kernel_still_optimal(self, make_random_problem):
        problem = make_random_problem(7, 3)
        best = exhaustive_search(problem)
        result = self._run(problem, "vector")
        assert result.optimal
        assert result.cost == pytest.approx(best.cost)

    def test_kernel_recorded_in_statistics(self, four_service_problem):
        result = branch_and_bound(four_service_problem, kernel="scalar")
        assert result.statistics.extra["kernel"] == "scalar"

"""Unit tests for precedence constraints."""

from __future__ import annotations

import pytest

from repro.core import PrecedenceGraph
from repro.exceptions import PrecedenceCycleError, PrecedenceViolationError


class TestPrecedenceGraph:
    def test_empty_graph(self):
        graph = PrecedenceGraph.empty(3)
        assert not graph.has_constraints
        assert graph.is_valid_order([2, 1, 0])
        assert graph.allowed_extensions(set(), [0, 1, 2]) == [0, 1, 2]

    def test_add_and_query(self):
        graph = PrecedenceGraph(4)
        graph.add(0, 2)
        graph.add(1, 2)
        assert graph.has_constraints
        assert graph.predecessors(2) == {0, 1}
        assert graph.successors(0) == {2}
        assert list(graph.edges()) == [(0, 2), (1, 2)]

    def test_self_loop_rejected(self):
        graph = PrecedenceGraph(3)
        with pytest.raises(PrecedenceCycleError):
            graph.add(1, 1)

    def test_cycle_rejected(self):
        graph = PrecedenceGraph(3)
        graph.add(0, 1)
        graph.add(1, 2)
        with pytest.raises(PrecedenceCycleError):
            graph.add(2, 0)

    def test_indirect_cycle_rejected(self):
        graph = PrecedenceGraph(4)
        graph.add(0, 1)
        graph.add(1, 2)
        graph.add(2, 3)
        with pytest.raises(PrecedenceCycleError):
            graph.add(3, 0)

    def test_out_of_range_index_rejected(self):
        graph = PrecedenceGraph(2)
        with pytest.raises(ValueError):
            graph.add(0, 5)
        with pytest.raises(ValueError):
            graph.predecessors(7)

    def test_chain_constructor(self):
        graph = PrecedenceGraph.chain([2, 0, 1], size=3)
        assert graph.is_valid_order([2, 0, 1])
        assert not graph.is_valid_order([0, 2, 1])

    def test_check_order_raises_with_position_info(self):
        graph = PrecedenceGraph(3)
        graph.add(0, 1)
        with pytest.raises(PrecedenceViolationError):
            graph.check_order([1, 0, 2])

    def test_check_order_ignores_absent_services(self):
        graph = PrecedenceGraph(4)
        graph.add(0, 3)
        # The partial order only contains unrelated services.
        graph.check_order([1, 2])

    def test_is_allowed_next(self):
        graph = PrecedenceGraph(3)
        graph.add(0, 1)
        assert graph.is_allowed_next(set(), 0)
        assert not graph.is_allowed_next(set(), 1)
        assert graph.is_allowed_next({0}, 1)

    def test_allowed_extensions_filters(self):
        graph = PrecedenceGraph(4)
        graph.add(0, 1)
        graph.add(0, 2)
        assert graph.allowed_extensions(set(), [0, 1, 2, 3]) == [0, 3]
        assert graph.allowed_extensions({0}, [1, 2, 3]) == [1, 2, 3]

    def test_topological_order_respects_constraints(self):
        graph = PrecedenceGraph(5)
        graph.add(3, 0)
        graph.add(0, 4)
        graph.add(1, 4)
        order = graph.topological_order()
        assert sorted(order) == list(range(5))
        assert graph.is_valid_order(order)

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            PrecedenceGraph(0)

    def test_repr_lists_edges(self):
        graph = PrecedenceGraph(2, edges=[(0, 1)])
        assert "(0, 1)" in repr(graph)

"""Unit tests for the bottleneck-TSP reduction and path solver."""

from __future__ import annotations

import pytest

from repro.core import (
    BottleneckPathSolver,
    CommunicationCostMatrix,
    bottleneck_path,
    branch_and_bound,
    distance_matrix_from_problem,
    exhaustive_search,
    is_bottleneck_tsp_instance,
    problem_from_distance_matrix,
)
from repro.exceptions import OptimizationError, ProblemTooLargeError
from repro.network import random_matrix


class TestReduction:
    def test_problem_from_distance_matrix_shape(self):
        distances = CommunicationCostMatrix([[0.0, 2.0, 3.0], [2.0, 0.0, 1.0], [3.0, 1.0, 0.0]])
        problem = problem_from_distance_matrix(distances)
        assert is_bottleneck_tsp_instance(problem)
        assert problem.costs == (0.0, 0.0, 0.0)
        assert problem.selectivities == (1.0, 1.0, 1.0)
        assert distance_matrix_from_problem(problem) == distances

    def test_round_trip_rejects_general_problems(self, three_service_problem):
        assert not is_bottleneck_tsp_instance(three_service_problem)
        with pytest.raises(OptimizationError):
            distance_matrix_from_problem(three_service_problem)

    def test_plan_cost_equals_max_edge(self):
        distances = CommunicationCostMatrix([[0.0, 2.0, 3.0], [2.0, 0.0, 1.0], [3.0, 1.0, 0.0]])
        problem = problem_from_distance_matrix(distances)
        assert problem.cost((0, 1, 2)) == pytest.approx(2.0)
        assert problem.cost((0, 2, 1)) == pytest.approx(3.0)

    def test_branch_and_bound_solves_the_reduction(self):
        for seed in range(8):
            distances = random_matrix(6, seed=seed, low=0.5, high=10.0)
            problem = problem_from_distance_matrix(distances)
            bb = branch_and_bound(problem)
            reference = exhaustive_search(problem)
            assert bb.cost == pytest.approx(reference.cost)


class TestBottleneckPathSolver:
    def test_hand_checked_instance(self):
        # Path 0-1-2 uses edges 1 and 2 -> bottleneck 2; any path through edge (0,2)=9 is worse.
        distances = CommunicationCostMatrix([[0.0, 1.0, 9.0], [1.0, 0.0, 2.0], [9.0, 2.0, 0.0]])
        result = bottleneck_path(distances)
        assert result.bottleneck == pytest.approx(2.0)
        assert set(result.path) == {0, 1, 2}

    def test_matches_reduction_plus_branch_and_bound(self):
        for seed in range(10):
            distances = random_matrix(6, seed=100 + seed, low=0.1, high=5.0)
            problem = problem_from_distance_matrix(distances)
            assert bottleneck_path(distances).bottleneck == pytest.approx(
                branch_and_bound(problem).cost
            )

    def test_asymmetric_distances(self):
        distances = CommunicationCostMatrix([[0.0, 1.0, 8.0], [5.0, 0.0, 1.0], [1.0, 7.0, 0.0]])
        result = bottleneck_path(distances)
        problem = problem_from_distance_matrix(distances)
        assert result.bottleneck == pytest.approx(exhaustive_search(problem).cost)

    def test_single_node(self):
        result = bottleneck_path(CommunicationCostMatrix([[0.0]]))
        assert result.path == (0,)
        assert result.bottleneck == 0.0

    def test_two_nodes(self):
        result = bottleneck_path(CommunicationCostMatrix([[0.0, 4.0], [3.0, 0.0]]))
        assert result.bottleneck == pytest.approx(3.0)
        assert result.path == (1, 0)

    def test_size_guard(self):
        with pytest.raises(ProblemTooLargeError):
            BottleneckPathSolver(max_size=4).solve(random_matrix(5, seed=1))

    def test_invalid_max_size(self):
        with pytest.raises(ValueError):
            BottleneckPathSolver(max_size=1)

    def test_statistics_populated(self):
        result = bottleneck_path(random_matrix(5, seed=3, low=1.0, high=2.0))
        assert result.feasibility_checks >= 1
        assert result.nodes_expanded >= 1
        assert result.elapsed_seconds >= 0.0

"""Unit tests for the local-search heuristics."""

from __future__ import annotations

import pytest

from repro.core import (
    HillClimbingOptimizer,
    SimulatedAnnealingOptimizer,
    SimulatedAnnealingOptions,
    branch_and_bound,
    greedy,
    hill_climbing,
    simulated_annealing,
)
from repro.core.greedy import GreedyStrategy


class TestHillClimbing:
    def test_never_worse_than_greedy_start(self, make_random_problem):
        for seed in range(10):
            problem = make_random_problem(6, seed)
            best_greedy = min(
                greedy(problem, strategy).cost
                for strategy in (
                    GreedyStrategy.NEAREST_SUCCESSOR,
                    GreedyStrategy.CHEAPEST_COST,
                    GreedyStrategy.MIN_TERM,
                )
            )
            assert hill_climbing(problem).cost <= best_greedy + 1e-9

    def test_never_better_than_optimum(self, make_random_problem):
        for seed in range(10):
            problem = make_random_problem(6, seed)
            assert hill_climbing(problem).cost >= branch_and_bound(problem).cost - 1e-9

    def test_often_reaches_the_optimum_on_small_instances(self, make_random_problem):
        hits = 0
        trials = 10
        for seed in range(trials):
            problem = make_random_problem(5, seed)
            if hill_climbing(problem).cost == pytest.approx(branch_and_bound(problem).cost):
                hits += 1
        assert hits >= trials // 2

    def test_respects_precedence(self, constrained_problem):
        order = hill_climbing(constrained_problem).order
        assert order.index(0) < order.index(2)
        assert order.index(1) < order.index(3)

    def test_invalid_iteration_count(self):
        with pytest.raises(ValueError):
            HillClimbingOptimizer(max_iterations=0)

    def test_result_is_marked_heuristic(self, four_service_problem):
        assert not hill_climbing(four_service_problem).optimal


class TestSimulatedAnnealing:
    def test_options_validation(self):
        with pytest.raises(ValueError):
            SimulatedAnnealingOptions(initial_temperature=0.0)
        with pytest.raises(ValueError):
            SimulatedAnnealingOptions(cooling=1.5)
        with pytest.raises(ValueError):
            SimulatedAnnealingOptions(steps=0)

    def test_deterministic_for_fixed_seed(self, make_random_problem):
        problem = make_random_problem(6, 11)
        options = SimulatedAnnealingOptions(steps=500, seed=9)
        first = SimulatedAnnealingOptimizer(options).optimize(problem)
        second = SimulatedAnnealingOptimizer(options).optimize(problem)
        assert first.order == second.order
        assert first.cost == pytest.approx(second.cost)

    def test_never_better_than_optimum(self, make_random_problem):
        for seed in range(8):
            problem = make_random_problem(6, seed)
            result = simulated_annealing(problem, SimulatedAnnealingOptions(steps=800, seed=seed))
            assert result.cost >= branch_and_bound(problem).cost - 1e-9

    def test_respects_precedence(self, constrained_problem):
        result = simulated_annealing(constrained_problem, SimulatedAnnealingOptions(steps=300))
        order = result.order
        assert order.index(0) < order.index(2)
        assert order.index(1) < order.index(3)

    def test_best_plan_is_tracked_not_final_state(self, make_random_problem):
        problem = make_random_problem(6, 3)
        result = simulated_annealing(problem, SimulatedAnnealingOptions(steps=1500, seed=2))
        # The reported cost must match the reported plan (consistency check in the result),
        # and must be at least as good as the greedy starting point.
        start = min(
            greedy(problem, strategy).cost
            for strategy in (
                GreedyStrategy.NEAREST_SUCCESSOR,
                GreedyStrategy.CHEAPEST_COST,
                GreedyStrategy.MIN_TERM,
            )
        )
        assert result.cost <= start + 1e-9

"""Unit tests for the Service model and ServiceRegistry."""

from __future__ import annotations

import pytest

from repro.core import Service, ServiceRegistry
from repro.exceptions import InvalidServiceError


class TestService:
    def test_basic_construction(self):
        service = Service("lookup", cost=2.5, selectivity=0.4, host="node-1")
        assert service.name == "lookup"
        assert service.cost == 2.5
        assert service.selectivity == 0.4
        assert service.host == "node-1"
        assert service.threads == 1

    def test_zero_cost_is_allowed(self):
        assert Service("free", cost=0.0, selectivity=1.0).cost == 0.0

    def test_negative_cost_rejected(self):
        with pytest.raises(InvalidServiceError):
            Service("bad", cost=-1.0, selectivity=0.5)

    def test_zero_selectivity_rejected(self):
        with pytest.raises(InvalidServiceError):
            Service("bad", cost=1.0, selectivity=0.0)

    def test_negative_selectivity_rejected(self):
        with pytest.raises(InvalidServiceError):
            Service("bad", cost=1.0, selectivity=-0.5)

    def test_non_finite_cost_rejected(self):
        with pytest.raises(InvalidServiceError):
            Service("bad", cost=float("nan"), selectivity=0.5)
        with pytest.raises(InvalidServiceError):
            Service("bad", cost=float("inf"), selectivity=0.5)

    def test_empty_name_rejected(self):
        with pytest.raises(InvalidServiceError):
            Service("", cost=1.0, selectivity=0.5)

    def test_invalid_threads_rejected(self):
        with pytest.raises(InvalidServiceError):
            Service("bad", cost=1.0, selectivity=0.5, threads=0)

    def test_selectivity_classification(self):
        assert Service("filter", cost=1.0, selectivity=0.3).is_selective
        assert not Service("filter", cost=1.0, selectivity=0.3).is_proliferative
        assert Service("expander", cost=1.0, selectivity=2.0).is_proliferative
        assert Service("neutral", cost=1.0, selectivity=1.0).is_selective

    def test_with_host_returns_copy(self):
        original = Service("s", cost=1.0, selectivity=0.5)
        pinned = original.with_host("h1")
        assert pinned.host == "h1"
        assert original.host is None
        assert pinned.cost == original.cost

    def test_scaled(self):
        service = Service("s", cost=2.0, selectivity=0.5)
        scaled = service.scaled(cost_factor=2.0, selectivity_factor=1.5)
        assert scaled.cost == 4.0
        assert scaled.selectivity == 0.75

    def test_describe_mentions_kind(self):
        assert "filter" in Service("f", cost=1.0, selectivity=0.5).describe()
        assert "proliferative" in Service("p", cost=1.0, selectivity=2.0).describe()

    def test_services_are_hashable_and_frozen(self):
        service = Service("s", cost=1.0, selectivity=0.5)
        assert {service: 1}[service] == 1
        with pytest.raises(AttributeError):
            service.cost = 2.0  # type: ignore[misc]


class TestServiceRegistry:
    def test_add_and_lookup(self):
        registry = ServiceRegistry()
        index = registry.add(Service("a", cost=1.0, selectivity=0.5))
        assert index == 0
        assert registry.index_of("a") == 0
        assert registry.get("a").name == "a"
        assert "a" in registry
        assert len(registry) == 1

    def test_duplicate_names_rejected(self):
        registry = ServiceRegistry([Service("a", cost=1.0, selectivity=0.5)])
        with pytest.raises(InvalidServiceError):
            registry.add(Service("a", cost=2.0, selectivity=0.4))

    def test_unknown_name_raises(self):
        registry = ServiceRegistry()
        with pytest.raises(InvalidServiceError):
            registry.index_of("missing")

    def test_indices_are_stable(self):
        services = [Service(f"s{i}", cost=1.0, selectivity=0.5) for i in range(5)]
        registry = ServiceRegistry(services)
        assert registry.names() == [f"s{i}" for i in range(5)]
        assert [registry.index_of(s.name) for s in services] == list(range(5))
        assert registry.as_tuple() == tuple(services)

    def test_by_host_groups(self):
        registry = ServiceRegistry(
            [
                Service("a", cost=1.0, selectivity=0.5, host="h1"),
                Service("b", cost=1.0, selectivity=0.5, host="h2"),
                Service("c", cost=1.0, selectivity=0.5, host="h1"),
            ]
        )
        groups = registry.by_host()
        assert [s.name for s in groups["h1"]] == ["a", "c"]
        assert [s.name for s in groups["h2"]] == ["b"]

    def test_non_service_rejected(self):
        registry = ServiceRegistry()
        with pytest.raises(InvalidServiceError):
            registry.add("not a service")  # type: ignore[arg-type]

    def test_iteration_and_indexing(self):
        services = [Service("a", cost=1.0, selectivity=0.5), Service("b", cost=2.0, selectivity=0.6)]
        registry = ServiceRegistry(services)
        assert list(registry) == services
        assert registry[1].name == "b"

"""Unit tests for the greedy construction heuristics."""

from __future__ import annotations

import pytest

from repro.core import GreedyOptimizer, GreedyStrategy, branch_and_bound, greedy, random_plan


class TestGreedyStrategies:
    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            GreedyOptimizer("nope")

    def test_all_strategies_return_valid_plans(self, four_service_problem):
        for strategy in GreedyStrategy.ALL:
            result = GreedyOptimizer(strategy, seed=1).optimize(four_service_problem)
            assert sorted(result.order) == list(range(4))
            assert not result.optimal
            assert result.cost == pytest.approx(four_service_problem.cost(result.order))

    def test_cheapest_cost_orders_by_cost_without_constraints(self, make_random_problem):
        problem = make_random_problem(5, 4)
        result = greedy(problem, GreedyStrategy.CHEAPEST_COST)
        costs = [problem.costs[index] for index in result.order]
        assert costs == sorted(costs)

    def test_most_selective_orders_by_selectivity(self, make_random_problem):
        problem = make_random_problem(5, 4)
        result = greedy(problem, GreedyStrategy.MOST_SELECTIVE)
        selectivities = [problem.selectivities[index] for index in result.order]
        assert selectivities == sorted(selectivities)

    def test_nearest_successor_follows_cheapest_transfers(self, three_service_problem):
        result = greedy(three_service_problem, GreedyStrategy.NEAREST_SUCCESSOR)
        order = result.order
        # After the first two services, each next hop is the cheapest remaining transfer.
        for position in range(1, len(order) - 1):
            last = order[position]
            chosen = order[position + 1]
            remaining = set(order[position + 1 :])
            cheapest = min(remaining, key=lambda j: three_service_problem.transfer_cost(last, j))
            assert three_service_problem.transfer_cost(last, chosen) == pytest.approx(
                three_service_problem.transfer_cost(last, cheapest)
            )

    def test_random_strategy_is_seeded(self, make_random_problem):
        problem = make_random_problem(6, 8)
        first = random_plan(problem, seed=5).order
        second = random_plan(problem, seed=5).order
        third = random_plan(problem, seed=6).order
        assert first == second
        assert sorted(third) == list(range(6))

    def test_greedy_never_beats_branch_and_bound(self, make_random_problem):
        for seed in range(15):
            problem = make_random_problem(6, seed)
            optimal = branch_and_bound(problem).cost
            for strategy in (
                GreedyStrategy.NEAREST_SUCCESSOR,
                GreedyStrategy.CHEAPEST_COST,
                GreedyStrategy.MIN_TERM,
            ):
                assert greedy(problem, strategy).cost >= optimal - 1e-9

    def test_precedence_respected_by_every_strategy(self, constrained_problem):
        for strategy in GreedyStrategy.ALL:
            result = GreedyOptimizer(strategy, seed=2).optimize(constrained_problem)
            order = result.order
            assert order.index(0) < order.index(2)
            assert order.index(1) < order.index(3)

    def test_min_term_lookahead_on_fixture(self, three_service_problem):
        result = greedy(three_service_problem, GreedyStrategy.MIN_TERM)
        assert result.cost == pytest.approx(three_service_problem.cost(result.order))

    def test_algorithm_name_encodes_strategy(self):
        assert GreedyOptimizer(GreedyStrategy.RANDOM).name == "greedy_random"

    def test_statistics_report_single_plan(self, four_service_problem):
        result = greedy(four_service_problem)
        assert result.statistics.plans_evaluated == 1
        assert result.statistics.nodes_expanded == 4

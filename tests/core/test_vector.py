"""Property-based tests for the vectorized batch-evaluation kernel.

The vector kernel (:mod:`repro.core.vector`) promises *bit-identical*
agreement with the scalar kernel — and hence with the from-scratch cost
model — in default (non-``fast_math``) mode: every cost assertion below uses
``==``, never approx.  Problems are drawn with and without sink transfers,
with and without precedence constraints (so infeasible-candidate masking is
exercised), and with proliferative (sigma > 1) services.

numpy is optional: the numpy-dependent tests skip cleanly when it is absent,
and the fallback tests run the library in a subprocess with the numpy import
*blocked*, proving the scalar path stays fully functional without it.
"""

from __future__ import annotations

import os
import subprocess
import sys
import textwrap

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import OrderingProblem, PrecedenceGraph
from repro.core.beam_search import BeamSearchOptimizer
from repro.core.cost_model import bottleneck_cost
from repro.core.dynamic_programming import DynamicProgrammingOptimizer
from repro.core.evaluation import (
    disable_kernel_profiling,
    enable_kernel_profiling,
)
from repro.core.local_search import HillClimbingOptimizer
from repro.core.vector import (
    AUTO_MIN_SIZE,
    MAX_VECTOR_SIZE,
    batch_evaluator,
    default_kernel,
    numpy_available,
    resolve_kernel,
    set_default_kernel,
)
from repro.exceptions import KernelError

needs_numpy = pytest.mark.skipif(
    not numpy_available(), reason="the vector kernel requires numpy"
)


# -- strategies ------------------------------------------------------------------


@st.composite
def problems(
    draw,
    min_size: int = 2,
    max_size: int = 7,
    max_selectivity: float = 2.0,
    allow_sink: bool = True,
    allow_precedence: bool = True,
):
    size = draw(st.integers(min_size, max_size))
    costs = draw(st.lists(st.floats(0.0, 10.0, allow_nan=False), min_size=size, max_size=size))
    selectivities = draw(
        st.lists(st.floats(0.05, max_selectivity, allow_nan=False), min_size=size, max_size=size)
    )
    flat = draw(
        st.lists(st.floats(0.0, 10.0, allow_nan=False), min_size=size * size, max_size=size * size)
    )
    rows = [[0.0 if i == j else flat[i * size + j] for j in range(size)] for i in range(size)]
    sink = None
    if allow_sink and draw(st.booleans()):
        sink = draw(st.lists(st.floats(0.0, 10.0, allow_nan=False), min_size=size, max_size=size))
    precedence = None
    if allow_precedence and size >= 2:
        # Random edges along a random topological order keep the DAG acyclic.
        topo = draw(st.permutations(range(size)))
        edges = []
        for a in range(size):
            for b in range(a + 1, size):
                if draw(st.booleans()) and draw(st.booleans()):
                    edges.append((topo[a], topo[b]))
        if edges:
            precedence = PrecedenceGraph(size, edges)
    return OrderingProblem.from_parameters(
        costs, selectivities, rows, precedence=precedence, sink_transfer=sink
    )


@st.composite
def problem_and_orders(draw, count: int = 8, **kwargs):
    problem = draw(problems(**kwargs))
    orders = [
        tuple(draw(st.permutations(range(problem.size)))) for _ in range(count)
    ]
    return problem, orders


def _feasible_scalar(problem: OrderingProblem, order) -> bool:
    masks = problem.evaluator().predecessor_masks
    if masks is None:
        return True
    placed = 0
    for service in order:
        if masks[service] & ~placed:
            return False
        placed |= 1 << service
    return True


# -- batched complete-plan scoring -------------------------------------------------


@needs_numpy
@settings(max_examples=100, deadline=None)
@given(problem_and_orders())
def test_score_orders_bit_identical_to_oracle(case):
    problem, orders = case
    evaluator = problem.evaluator()
    batch = batch_evaluator(evaluator)
    scores = batch.score_orders(orders)
    for order, score in zip(orders, scores):
        oracle = bottleneck_cost(
            problem.costs, problem.selectivities, problem.transfer, order, problem.sink_transfer
        )
        assert score == oracle
        assert score == evaluator.cost(order)


@needs_numpy
@settings(max_examples=100, deadline=None)
@given(problem_and_orders())
def test_feasibility_mask_matches_scalar_precedence_walk(case):
    problem, orders = case
    batch = batch_evaluator(problem.evaluator())
    mask = batch.feasible_orders(orders)
    for order, flag in zip(orders, mask):
        assert bool(flag) == _feasible_scalar(problem, order)


# -- beam fronts --------------------------------------------------------------------


@needs_numpy
@settings(max_examples=80, deadline=None)
@given(problems())
def test_score_front_matches_prefix_extension_bit_for_bit(problem):
    evaluator = problem.evaluator()
    batch = batch_evaluator(evaluator)
    front = [evaluator.root()]
    for level in range(problem.size):
        final = level + 1 == problem.size
        parents, extensions, epsilons = batch.score_front(front, final)
        reference = [
            (parent_index, successor, state.extend(successor).epsilon)
            for parent_index, state in enumerate(front)
            for successor in state.allowed_extensions()
        ]
        produced = list(zip(parents.tolist(), extensions.tolist(), epsilons.tolist()))
        # Same feasible children, in the same generation order, same epsilons.
        assert [(p, e) for p, e, _ in produced] == [(p, e) for p, e, _ in reference]
        for (_, _, vector_eps), (_, _, scalar_eps) in zip(produced, reference):
            assert vector_eps == scalar_eps
        front = [front[p].extend(e) for p, e, _ in produced[:4]]


# -- neighbourhoods -----------------------------------------------------------------


@needs_numpy
@settings(max_examples=80, deadline=None)
@given(problems())
def test_best_neighbor_matches_scalar_steepest_descent_step(problem):
    evaluator = problem.evaluator()
    batch = batch_evaluator(evaluator)
    state = evaluator.root()
    while not state.is_complete:
        state = state.extend(state.allowed_extensions()[0])
    base = state.order
    neighborhood = evaluator.neighborhood(base)
    size = problem.size

    best_cost = neighborhood.cost
    best_order = None
    evaluated = 0
    for i in range(size):
        for j in range(i + 1, size):
            if not neighborhood.swap_feasible(i, j):
                continue
            evaluated += 1
            cost = neighborhood.swap_cost(i, j, best_cost)
            if cost < best_cost:
                best_cost = cost
                best_order = neighborhood.swapped(i, j)
    for i in range(size):
        for j in range(size):
            if i == j or not neighborhood.relocate_feasible(i, j):
                continue
            evaluated += 1
            cost = neighborhood.relocate_cost(i, j, best_cost)
            if cost < best_cost:
                best_cost = cost
                best_order = neighborhood.relocated(i, j)

    vector_order, vector_cost, vector_evaluated = batch.best_neighbor(base, neighborhood.cost)
    assert vector_evaluated == evaluated
    if best_order is None:
        assert vector_order is None
        assert vector_cost == neighborhood.cost
    else:
        assert vector_order == best_order
        assert vector_cost == best_cost


# -- optimizer parity ---------------------------------------------------------------


@needs_numpy
@settings(max_examples=40, deadline=None)
@given(problems(), st.sampled_from([1, 3, 16]), st.booleans())
def test_beam_search_kernels_agree_bit_for_bit(problem, width, use_residual):
    scalar = BeamSearchOptimizer(
        width=width, use_residual_bound=use_residual, kernel="scalar"
    ).optimize(problem)
    vector = BeamSearchOptimizer(
        width=width, use_residual_bound=use_residual, kernel="vector"
    ).optimize(problem)
    assert vector.cost == scalar.cost
    assert vector.plan.order == scalar.plan.order
    assert vector.optimal == scalar.optimal
    assert vector.statistics.nodes_expanded == scalar.statistics.nodes_expanded
    assert scalar.statistics.extra["kernel"] == "scalar"
    assert vector.statistics.extra["kernel"] == "vector"


@needs_numpy
@settings(max_examples=40, deadline=None)
@given(problems())
def test_hill_climbing_kernels_walk_identical_trajectories(problem):
    scalar = HillClimbingOptimizer(kernel="scalar").optimize(problem)
    vector = HillClimbingOptimizer(kernel="vector").optimize(problem)
    assert vector.cost == scalar.cost
    assert vector.plan.order == scalar.plan.order
    assert vector.statistics.plans_evaluated == scalar.statistics.plans_evaluated
    assert vector.statistics.incumbent_updates == scalar.statistics.incumbent_updates


@needs_numpy
@settings(max_examples=30, deadline=None)
@given(problems(max_size=8))
def test_dynamic_programming_kernels_agree_including_dp_states(problem):
    scalar = DynamicProgrammingOptimizer(kernel="scalar").optimize(problem)
    vector = DynamicProgrammingOptimizer(kernel="vector").optimize(problem)
    assert vector.cost == scalar.cost
    assert vector.plan.order == scalar.plan.order
    assert vector.statistics.extra["dp_states"] == scalar.statistics.extra["dp_states"]


# -- fast_math ----------------------------------------------------------------------


@needs_numpy
@settings(max_examples=60, deadline=None)
@given(problem_and_orders())
def test_fast_math_is_close_but_not_contractually_exact(case):
    problem, orders = case
    evaluator = problem.evaluator()
    fast = batch_evaluator(evaluator, fast_math=True)
    assert fast.fast_math
    scores = fast.score_orders(orders)
    for order, score in zip(orders, scores):
        exact = evaluator.cost(order)
        # Reassociated arithmetic: one rounding fewer per term, so only a
        # tolerance contract — a handful of ulps at these magnitudes.
        assert score == pytest.approx(exact, rel=1e-12, abs=1e-12)


@needs_numpy
def test_fast_math_evaluators_are_cached_separately():
    problem = OrderingProblem.from_parameters(
        [1.0, 2.0, 3.0], [0.5, 0.8, 1.2], [[0, 1, 2], [1, 0, 3], [2, 3, 0]]
    )
    evaluator = problem.evaluator()
    exact = batch_evaluator(evaluator)
    fast = batch_evaluator(evaluator, fast_math=True)
    assert exact is batch_evaluator(evaluator)
    assert fast is batch_evaluator(evaluator, fast_math=True)
    assert exact is not fast


# -- kernel selection ---------------------------------------------------------------


def test_resolve_kernel_rejects_unknown_names():
    with pytest.raises(KernelError, match="unknown evaluation kernel"):
        resolve_kernel("simd")
    with pytest.raises(KernelError):
        set_default_kernel("gpu")


def test_resolve_scalar_is_always_available():
    assert resolve_kernel("scalar") == "scalar"
    assert resolve_kernel("scalar", size=1000) == "scalar"


def test_set_default_kernel_exports_env_for_worker_processes():
    previous = os.environ.get("REPRO_KERNEL")
    try:
        assert set_default_kernel("scalar") == "scalar"
        assert os.environ["REPRO_KERNEL"] == "scalar"
        assert default_kernel() == "scalar"
        assert resolve_kernel(None, size=64) == "scalar"
        set_default_kernel(None)
        assert "REPRO_KERNEL" not in os.environ
        assert default_kernel() == "auto"
    finally:
        set_default_kernel(None)
        if previous is not None:
            os.environ["REPRO_KERNEL"] = previous


@needs_numpy
def test_auto_resolution_is_size_aware():
    assert resolve_kernel("auto", size=AUTO_MIN_SIZE - 1) == "scalar"
    assert resolve_kernel("auto", size=AUTO_MIN_SIZE) == "vector"
    assert resolve_kernel("auto", size=MAX_VECTOR_SIZE + 1) == "scalar"
    assert resolve_kernel("auto") == "vector"


@needs_numpy
def test_explicit_vector_rejects_oversized_problems():
    with pytest.raises(KernelError, match="at most"):
        resolve_kernel("vector", size=MAX_VECTOR_SIZE + 1)


# -- profiling ----------------------------------------------------------------------


@needs_numpy
def test_batch_profiling_counts_candidates_not_calls():
    problem = OrderingProblem.from_parameters(
        [1.0, 2.0, 3.0, 4.0],
        [0.5, 0.8, 1.2, 0.7],
        [[0, 1, 2, 3], [1, 0, 3, 2], [2, 3, 0, 1], [3, 2, 1, 0]],
    )
    batch = batch_evaluator(problem.evaluator())
    disable_kernel_profiling()
    profile = enable_kernel_profiling()
    try:
        orders = [(0, 1, 2, 3), (1, 0, 2, 3), (2, 1, 0, 3)]
        batch.score_orders(orders)
        assert profile.batch_evaluations == len(orders)
        assert profile.counts()["batch"] == len(orders)
        assert "batch_evaluations" in profile.snapshot()
        before = profile.batch_evaluations
        batch.best_neighbor((0, 1, 2, 3), float("inf"))
        # One neighbourhood = one feasibility batch + one scoring batch; the
        # counter advanced by whole batch sizes, not by ones.
        assert profile.batch_evaluations - before >= 12
    finally:
        disable_kernel_profiling()


# -- no-numpy fallback --------------------------------------------------------------


_NO_NUMPY_PROLOGUE = """
    import sys

    class _BlockNumpy:
        def find_module(self, name, path=None):  # pragma: no cover - py<3.12 shim
            return self if name.split(".")[0] == "numpy" else None

        def find_spec(self, name, path=None, target=None):
            if name.split(".")[0] == "numpy":
                raise ImportError("numpy is blocked for this test")
            return None

    sys.meta_path.insert(0, _BlockNumpy())
"""


def _run_without_numpy(body: str) -> None:
    script = textwrap.dedent(_NO_NUMPY_PROLOGUE) + textwrap.dedent(body)
    env = dict(os.environ)
    env.pop("REPRO_KERNEL", None)
    src = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir, "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    completed = subprocess.run(
        [sys.executable, "-c", script], env=env, capture_output=True, text=True, timeout=120
    )
    assert completed.returncode == 0, completed.stderr


def test_without_numpy_auto_falls_back_to_scalar():
    _run_without_numpy(
        """
        from repro.core import vector
        assert vector.np is None
        assert not vector.numpy_available()
        assert vector.resolve_kernel() == "scalar"
        assert vector.resolve_kernel("auto", size=64) == "scalar"
        """
    )


def test_without_numpy_optimizers_still_work_and_report_scalar():
    _run_without_numpy(
        """
        from repro.core.beam_search import BeamSearchOptimizer
        from repro.core.dynamic_programming import DynamicProgrammingOptimizer
        from repro.core.local_search import HillClimbingOptimizer
        from repro.workloads import credit_card_screening

        problem = credit_card_screening()
        for optimizer in (
            BeamSearchOptimizer(kernel=None),
            HillClimbingOptimizer(),
            DynamicProgrammingOptimizer(),
        ):
            result = optimizer.optimize(problem)
            assert result.statistics.extra["kernel"] == "scalar"
        """
    )


def test_without_numpy_explicit_vector_request_raises_kernel_error():
    _run_without_numpy(
        """
        from repro.core.local_search import HillClimbingOptimizer
        from repro.core.vector import resolve_kernel
        from repro.exceptions import KernelError
        from repro.workloads import credit_card_screening

        try:
            resolve_kernel("vector")
        except KernelError as error:
            assert "numpy" in str(error)
        else:
            raise AssertionError("explicit vector request must fail without numpy")

        try:
            HillClimbingOptimizer(kernel="vector").optimize(credit_card_screening())
        except KernelError:
            pass
        else:
            raise AssertionError("optimizer with kernel='vector' must fail without numpy")
        """
    )

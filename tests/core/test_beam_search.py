"""Unit tests for the beam-search heuristic."""

from __future__ import annotations

import math

import pytest

from repro.core import beam_search, branch_and_bound, optimize
from repro.core.beam_search import BeamSearchOptimizer


class TestBeamSearch:
    def test_width_validation(self):
        with pytest.raises(ValueError):
            BeamSearchOptimizer(width=0)

    def test_wide_beam_is_exhaustive_and_marked_optimal(self, make_random_problem):
        problem = make_random_problem(5, 3)
        result = BeamSearchOptimizer(width=math.factorial(5)).optimize(problem)
        assert result.optimal
        assert result.cost == pytest.approx(branch_and_bound(problem).cost)
        assert result.statistics.extra["beam_overflowed"] is False

    def test_narrow_beam_is_marked_heuristic(self, make_random_problem):
        problem = make_random_problem(6, 4)
        result = BeamSearchOptimizer(width=2).optimize(problem)
        assert not result.optimal
        assert result.statistics.extra["beam_overflowed"] is True

    def test_never_better_than_the_optimum(self, make_random_problem):
        for seed in range(15):
            problem = make_random_problem(6, seed)
            assert beam_search(problem, width=4).cost >= branch_and_bound(problem).cost - 1e-9

    def test_quality_improves_with_width(self, make_random_problem):
        worse = 0
        for seed in range(10):
            problem = make_random_problem(7, seed, cost_range=(0.0, 1.0), transfer_range=(0.0, 3.0))
            narrow = beam_search(problem, width=1).cost
            wide = beam_search(problem, width=32).cost
            if wide > narrow + 1e-9:
                worse += 1
        assert worse == 0

    def test_wide_beam_often_matches_optimum(self, make_random_problem):
        hits = 0
        for seed in range(10):
            problem = make_random_problem(7, seed)
            if beam_search(problem, width=64).cost == pytest.approx(branch_and_bound(problem).cost):
                hits += 1
        assert hits >= 8

    def test_respects_precedence(self, constrained_problem):
        order = beam_search(constrained_problem, width=4).order
        assert order.index(0) < order.index(2)
        assert order.index(1) < order.index(3)

    def test_registered_in_the_facade(self, four_service_problem):
        result = optimize(four_service_problem, algorithm="beam_search", width=8)
        assert result.algorithm == "beam_search"

    def test_plan_is_a_permutation(self, make_random_problem):
        problem = make_random_problem(8, 11)
        assert sorted(beam_search(problem, width=3).order) == list(range(8))

"""Unit tests for the exhaustive baseline."""

from __future__ import annotations

from itertools import permutations

import pytest

from repro.core import ExhaustiveOptimizer, exhaustive_search
from repro.exceptions import ProblemTooLargeError


class TestExhaustive:
    def test_finds_minimum_over_all_permutations(self, four_service_problem):
        result = exhaustive_search(four_service_problem)
        best = min(
            four_service_problem.cost(order) for order in permutations(range(4))
        )
        assert result.cost == pytest.approx(best)
        assert result.optimal

    def test_counts_every_permutation(self, four_service_problem):
        result = exhaustive_search(four_service_problem)
        # Without constraints every complete permutation is evaluated, and the
        # prefix-sharing recursion visits every feasible prefix exactly once:
        # 4 + 4*3 + 4*3*2 + 4! nodes for n = 4.
        assert result.statistics.plans_evaluated == 24
        assert result.statistics.nodes_expanded == 4 + 12 + 24 + 24

    def test_respects_precedence(self, constrained_problem):
        result = exhaustive_search(constrained_problem)
        order = result.order
        assert order.index(0) < order.index(2)
        assert order.index(1) < order.index(3)
        # Feasible plans are fewer than n!.
        assert result.statistics.plans_evaluated < result.statistics.nodes_expanded

    def test_size_guard(self, make_random_problem):
        problem = make_random_problem(6, 0)
        with pytest.raises(ProblemTooLargeError):
            ExhaustiveOptimizer(max_size=5).optimize(problem)

    def test_size_guard_can_be_raised(self, make_random_problem):
        problem = make_random_problem(6, 0)
        result = ExhaustiveOptimizer(max_size=6).optimize(problem)
        assert result.optimal

    def test_invalid_max_size(self):
        with pytest.raises(ValueError):
            ExhaustiveOptimizer(max_size=0)

    def test_single_service(self, make_random_problem):
        problem = make_random_problem(1, 1)
        result = exhaustive_search(problem)
        assert result.order == (0,)

"""Unit tests for the bottleneck cost metric and the communication-cost matrix."""

from __future__ import annotations

import pytest

from repro.core import CommunicationCostMatrix, bottleneck_cost, bottleneck_stage, prefix_products, stage_costs
from repro.exceptions import InvalidCostMatrixError, InvalidPlanError


class TestCommunicationCostMatrix:
    def test_valid_matrix(self):
        matrix = CommunicationCostMatrix([[0.0, 1.0], [2.0, 0.0]])
        assert matrix.size == 2
        assert matrix.cost(0, 1) == 1.0
        assert matrix.cost(1, 0) == 2.0

    def test_rejects_non_square(self):
        with pytest.raises(InvalidCostMatrixError):
            CommunicationCostMatrix([[0.0, 1.0], [2.0, 0.0, 3.0]])

    def test_rejects_empty(self):
        with pytest.raises(InvalidCostMatrixError):
            CommunicationCostMatrix([])

    def test_rejects_negative_entries(self):
        with pytest.raises(InvalidCostMatrixError):
            CommunicationCostMatrix([[0.0, -1.0], [1.0, 0.0]])

    def test_rejects_nonzero_diagonal(self):
        with pytest.raises(InvalidCostMatrixError):
            CommunicationCostMatrix([[0.5, 1.0], [1.0, 0.0]])

    def test_uniform_constructor(self):
        matrix = CommunicationCostMatrix.uniform(3, 2.0)
        assert matrix.is_uniform()
        assert matrix.cost(0, 0) == 0.0
        assert matrix.cost(0, 2) == 2.0
        assert matrix.mean_cost() == pytest.approx(2.0)

    def test_zeros_constructor(self):
        matrix = CommunicationCostMatrix.zeros(3)
        assert matrix.max_cost() == 0.0
        assert matrix.is_uniform()

    def test_from_function(self):
        matrix = CommunicationCostMatrix.from_function(3, lambda i, j: i + j)
        assert matrix.cost(1, 2) == 3.0
        assert matrix.cost(2, 2) == 0.0

    def test_from_host_costs(self):
        matrix = CommunicationCostMatrix.from_host_costs(
            ["h1", "h2", "h1"], {("h1", "h2"): 5.0, ("h2", "h1"): 3.0}
        )
        assert matrix.cost(0, 1) == 5.0
        assert matrix.cost(1, 0) == 3.0
        assert matrix.cost(0, 2) == 0.0  # same host

    def test_statistics(self):
        matrix = CommunicationCostMatrix([[0.0, 1.0, 3.0], [1.0, 0.0, 5.0], [3.0, 5.0, 0.0]])
        assert matrix.max_cost() == 5.0
        assert matrix.min_cost() == 1.0
        assert matrix.mean_cost() == pytest.approx((1 + 3 + 1 + 5 + 3 + 5) / 6)
        assert matrix.is_symmetric()
        assert not matrix.is_uniform()
        assert matrix.heterogeneity() > 0

    def test_heterogeneity_zero_for_uniform(self):
        assert CommunicationCostMatrix.uniform(4, 1.5).heterogeneity() == pytest.approx(0.0)

    def test_asymmetric_detection(self):
        matrix = CommunicationCostMatrix([[0.0, 1.0], [2.0, 0.0]])
        assert not matrix.is_symmetric()
        symmetric = matrix.symmetrized()
        assert symmetric.is_symmetric()
        assert symmetric.cost(0, 1) == pytest.approx(1.5)

    def test_scaled(self):
        matrix = CommunicationCostMatrix([[0.0, 2.0], [4.0, 0.0]]).scaled(0.5)
        assert matrix.cost(0, 1) == 1.0
        assert matrix.cost(1, 0) == 2.0

    def test_submatrix(self):
        matrix = CommunicationCostMatrix(
            [[0.0, 1.0, 2.0], [3.0, 0.0, 4.0], [5.0, 6.0, 0.0]]
        ).submatrix([2, 0])
        assert matrix.size == 2
        assert matrix.cost(0, 1) == 5.0  # from service 2 to service 0
        assert matrix.cost(1, 0) == 2.0

    def test_equality_and_hash(self):
        a = CommunicationCostMatrix([[0.0, 1.0], [2.0, 0.0]])
        b = CommunicationCostMatrix([[0.0, 1.0], [2.0, 0.0]])
        assert a == b
        assert hash(a) == hash(b)
        assert a != CommunicationCostMatrix.uniform(2, 1.0)

    def test_as_lists_is_a_copy(self):
        matrix = CommunicationCostMatrix([[0.0, 1.0], [2.0, 0.0]])
        lists = matrix.as_lists()
        lists[0][1] = 99.0
        assert matrix.cost(0, 1) == 1.0


class TestBottleneckCost:
    COSTS = (2.0, 1.0, 4.0)
    SELECTIVITIES = (0.5, 0.9, 0.3)
    TRANSFER = CommunicationCostMatrix([[0.0, 1.0, 5.0], [2.0, 0.0, 1.0], [4.0, 2.0, 0.0]])

    def test_prefix_products(self):
        assert prefix_products(self.SELECTIVITIES, (0, 1, 2)) == [1.0, 0.5, 0.45]
        assert prefix_products(self.SELECTIVITIES, (2, 0)) == [1.0, 0.3]

    def test_hand_computed_cost(self):
        # Plan 0 -> 1 -> 2:
        #   stage 0: 1.0 * (2 + 0.5*1)   = 2.5
        #   stage 1: 0.5 * (1 + 0.9*1)   = 0.95
        #   stage 2: 0.45 * 4            = 1.8
        cost = bottleneck_cost(self.COSTS, self.SELECTIVITIES, self.TRANSFER, (0, 1, 2))
        assert cost == pytest.approx(2.5)

    def test_hand_computed_cost_other_order(self):
        # Plan 2 -> 1 -> 0:
        #   stage 0: 1.0 * (4 + 0.3*2)    = 4.6
        #   stage 1: 0.3 * (1 + 0.9*2)    = 0.84
        #   stage 2: 0.27 * 2             = 0.54
        cost = bottleneck_cost(self.COSTS, self.SELECTIVITIES, self.TRANSFER, (2, 1, 0))
        assert cost == pytest.approx(4.6)

    def test_stage_breakdown(self):
        stages = stage_costs(self.COSTS, self.SELECTIVITIES, self.TRANSFER, (0, 1, 2))
        assert [stage.position for stage in stages] == [0, 1, 2]
        assert [stage.service_index for stage in stages] == [0, 1, 2]
        assert stages[0].processing == pytest.approx(2.0)
        assert stages[0].transfer == pytest.approx(0.5)
        assert stages[1].input_rate == pytest.approx(0.5)
        assert stages[2].transfer == 0.0  # last stage, no sink transfer configured

    def test_last_stage_with_sink_transfer(self):
        stages = stage_costs(
            self.COSTS, self.SELECTIVITIES, self.TRANSFER, (0, 1, 2), sink_transfer=[0.0, 0.0, 10.0]
        )
        assert stages[2].transfer == pytest.approx(0.45 * 0.3 * 10.0)

    def test_bottleneck_stage_identifies_argmax(self):
        stage = bottleneck_stage(self.COSTS, self.SELECTIVITIES, self.TRANSFER, (0, 1, 2))
        assert stage.position == 0
        assert stage.total == pytest.approx(2.5)

    def test_single_service_plan(self):
        cost = bottleneck_cost((3.0,), (0.5,), CommunicationCostMatrix.zeros(1), (0,))
        assert cost == pytest.approx(3.0)

    def test_partial_order_rejected_by_duplicates(self):
        with pytest.raises(InvalidPlanError):
            bottleneck_cost(self.COSTS, self.SELECTIVITIES, self.TRANSFER, (0, 0, 1))

    def test_out_of_range_index_rejected(self):
        with pytest.raises(InvalidPlanError):
            bottleneck_cost(self.COSTS, self.SELECTIVITIES, self.TRANSFER, (0, 1, 3))

    def test_empty_plan_rejected(self):
        with pytest.raises(InvalidPlanError):
            bottleneck_cost(self.COSTS, self.SELECTIVITIES, self.TRANSFER, ())

    def test_non_integer_entries_rejected(self):
        with pytest.raises(InvalidPlanError):
            bottleneck_cost(self.COSTS, self.SELECTIVITIES, self.TRANSFER, (0.0, 1, 2))  # type: ignore[arg-type]

    def test_selectivity_one_and_zero_cost_reduces_to_max_edge(self):
        # The paper's bottleneck-TSP reduction: cost becomes the largest traversed edge.
        costs = (0.0, 0.0, 0.0)
        selectivities = (1.0, 1.0, 1.0)
        cost = bottleneck_cost(costs, selectivities, self.TRANSFER, (0, 1, 2))
        assert cost == pytest.approx(max(self.TRANSFER.cost(0, 1), self.TRANSFER.cost(1, 2)))

"""Unit tests for the epsilon-bar residual bound (Lemma 2's ingredient)."""

from __future__ import annotations

from itertools import permutations

import pytest

from repro.core import PartialPlan, epsilon_bar, initial_upper_bound, max_residual_cost


class TestResidualBound:
    def test_bound_is_zero_for_complete_plans(self, three_service_problem):
        partial = PartialPlan.from_order(three_service_problem, (0, 1, 2))
        assert epsilon_bar(partial) == 0.0

    def test_bound_covers_every_completion(self, make_random_problem):
        """epsilon-bar upper-bounds the cost contribution of every not-yet-placed service."""
        for seed in range(15):
            problem = make_random_problem(5, seed)
            for prefix_length in range(1, 5):
                prefix = tuple(range(prefix_length))
                partial = PartialPlan.from_order(problem, prefix)
                bound = max(partial.epsilon, epsilon_bar(partial))
                remaining = [index for index in range(5) if index not in prefix]
                for completion in permutations(remaining):
                    cost = problem.cost(prefix + completion)
                    assert cost <= bound + 1e-9

    def test_bound_covers_completions_with_proliferative_services(self, make_random_problem):
        """The sigma > 1 modification keeps the bound valid."""
        for seed in range(15):
            problem = make_random_problem(5, seed, selectivity_range=(0.3, 2.0))
            prefix = (0, 1)
            partial = PartialPlan.from_order(problem, prefix)
            bound = max(partial.epsilon, epsilon_bar(partial))
            remaining = [index for index in range(5) if index not in prefix]
            for completion in permutations(remaining):
                cost = problem.cost(prefix + completion)
                assert cost <= bound + 1e-9

    def test_lemma2_closure_costs_are_exact(self, make_random_problem):
        """When epsilon >= epsilon-bar, every completion costs exactly epsilon (Lemma 2)."""
        closures_checked = 0
        for seed in range(40):
            problem = make_random_problem(5, seed)
            for prefix in permutations(range(5), 3):
                partial = PartialPlan.from_order(problem, prefix)
                if partial.epsilon < epsilon_bar(partial):
                    continue
                closures_checked += 1
                remaining = [index for index in range(5) if index not in prefix]
                for completion in permutations(remaining):
                    cost = problem.cost(prefix + completion)
                    assert cost == pytest.approx(partial.epsilon)
        assert closures_checked > 0, "the workload never triggered a Lemma-2 closure"

    def test_attribution_of_critical_service(self, three_service_problem):
        partial = PartialPlan.from_order(three_service_problem, (1,))
        residual = max_residual_cost(partial)
        assert residual.value >= residual.last_service_bound
        assert residual.critical_service in (None, 0, 2)

    def test_last_service_bound_uses_worst_outgoing_transfer(self, three_service_problem):
        partial = PartialPlan.from_order(three_service_problem, (0,))
        residual = max_residual_cost(partial)
        # Worst outgoing transfer of WS0 to {WS1, WS2} is t(0,2)=5: bound = 2 + 0.5*5 = 4.5.
        assert residual.last_service_bound == pytest.approx(4.5)

    def test_initial_upper_bound_dominates_every_plan(self, make_random_problem):
        for seed in range(10):
            problem = make_random_problem(5, seed, selectivity_range=(0.2, 1.8))
            bound = initial_upper_bound(problem)
            for order in permutations(range(5)):
                assert problem.cost(order) <= bound + 1e-9

    def test_sink_transfer_participates_in_bound(self, three_service_problem):
        problem = three_service_problem.with_sink_transfer([100.0, 100.0, 100.0])
        partial = PartialPlan.from_order(problem, (0,))
        # Any remaining service could end up last and pay the huge sink hop,
        # so the bound must exceed it.
        assert epsilon_bar(partial) >= 0.5 * min(problem.costs[1:])  # sanity
        assert epsilon_bar(partial) >= 0.5 * (problem.costs[1] + problem.selectivities[1] * 100.0) - 1e-9

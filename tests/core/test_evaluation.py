"""Property-based tests for the incremental evaluation kernel.

The kernel (:mod:`repro.core.evaluation`) promises *bit-identical* agreement
with the validated from-scratch cost model, not merely approximate agreement:
every assertion on costs below uses ``==``.  Problems are drawn with and
without sink transfers and with and without precedence constraints, and with
proliferative (sigma > 1) services, so all branches of the kernel arithmetic
are exercised.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import OrderingProblem, PrecedenceGraph
from repro.core.bounds import max_residual_cost
from repro.core.cost_model import bottleneck_cost, bottleneck_stage
from repro.core.plan import PartialPlan

# -- strategies ------------------------------------------------------------------


@st.composite
def problems(
    draw,
    min_size: int = 2,
    max_size: int = 7,
    max_selectivity: float = 2.0,
    allow_sink: bool = True,
    allow_precedence: bool = False,
):
    size = draw(st.integers(min_size, max_size))
    costs = draw(st.lists(st.floats(0.0, 10.0, allow_nan=False), min_size=size, max_size=size))
    selectivities = draw(
        st.lists(st.floats(0.05, max_selectivity, allow_nan=False), min_size=size, max_size=size)
    )
    flat = draw(
        st.lists(st.floats(0.0, 10.0, allow_nan=False), min_size=size * size, max_size=size * size)
    )
    rows = [[0.0 if i == j else flat[i * size + j] for j in range(size)] for i in range(size)]
    sink = None
    if allow_sink and draw(st.booleans()):
        sink = draw(st.lists(st.floats(0.0, 10.0, allow_nan=False), min_size=size, max_size=size))
    precedence = None
    if allow_precedence and size >= 2:
        # Random edges along a random topological order keep the DAG acyclic.
        topo = draw(st.permutations(range(size)))
        edges = []
        for a in range(size):
            for b in range(a + 1, size):
                if draw(st.booleans()) and draw(st.booleans()):
                    edges.append((topo[a], topo[b]))
        if edges:
            precedence = PrecedenceGraph(size, edges)
    return OrderingProblem.from_parameters(
        costs, selectivities, rows, precedence=precedence, sink_transfer=sink
    )


@st.composite
def problem_and_order(draw, **kwargs):
    problem = draw(problems(**kwargs))
    order = tuple(draw(st.permutations(range(problem.size))))
    return problem, order


# -- from-scratch evaluation -------------------------------------------------------


@settings(max_examples=120, deadline=None)
@given(problem_and_order())
def test_evaluator_cost_is_bit_identical_to_oracle(case):
    problem, order = case
    oracle = bottleneck_cost(
        problem.costs, problem.selectivities, problem.transfer, order, problem.sink_transfer
    )
    assert problem.evaluator().cost(order) == oracle


@settings(max_examples=100, deadline=None)
@given(problem_and_order(), st.floats(0.0, 50.0, allow_nan=False))
def test_cost_bounded_short_circuit_semantics(case, bound):
    problem, order = case
    evaluator = problem.evaluator()
    exact = evaluator.cost(order)
    bounded = evaluator.cost_bounded(order, bound)
    if bounded < bound:
        assert bounded == exact
    else:
        # The scan stopped early: the returned running maximum is a valid
        # lower bound, so the plan provably cannot beat the incumbent.
        assert bounded <= exact
        assert exact >= bound


# -- prefix states -----------------------------------------------------------------


@settings(max_examples=120, deadline=None)
@given(problem_and_order())
def test_prefix_extension_matches_oracle_and_is_monotone(case):
    problem, order = case
    evaluator = problem.evaluator()
    state = evaluator.root()
    previous = state.epsilon
    for index in order:
        state = state.extend(index)
        assert state.epsilon >= previous  # Lemma 1, exactly (max never shrinks)
        previous = state.epsilon
    oracle = bottleneck_cost(
        problem.costs, problem.selectivities, problem.transfer, order, problem.sink_transfer
    )
    assert state.is_complete
    assert state.epsilon == oracle
    assert state.order == order
    stage = bottleneck_stage(
        problem.costs, problem.selectivities, problem.transfer, order, problem.sink_transfer
    )
    assert state.bottleneck_position == stage.position


@settings(max_examples=80, deadline=None)
@given(problem_and_order(allow_precedence=True))
def test_prefix_state_agrees_with_partial_plan(case):
    problem, order = case
    evaluator = problem.evaluator()
    state = evaluator.root()
    partial = PartialPlan.empty(problem)
    for index in order:
        assert state.allowed_extensions() == partial.allowed_extensions()
        assert state.remaining() == partial.remaining()
        if index not in partial.allowed_extensions() and index in partial.remaining():
            break  # precedence forbids this order; both views agreed up to here
        if index not in partial.remaining():
            break
        state = state.extend(index)
        partial = partial.extend(index)
        assert state.epsilon == partial.epsilon
        assert state.bottleneck_position == partial.bottleneck_position
        assert state.output_rate == partial.output_rate
        assert state.last == partial.last
        assert state.order == partial.order


# -- delta moves -------------------------------------------------------------------


@settings(max_examples=150, deadline=None)
@given(problem_and_order(), st.data())
def test_swap_delta_is_bit_identical_to_from_scratch(case, data):
    problem, order = case
    size = problem.size
    i = data.draw(st.integers(0, size - 1))
    j = data.draw(st.integers(0, size - 1))
    evaluator = problem.evaluator()
    neighborhood = evaluator.neighborhood(order)
    moved = neighborhood.swapped(i, j)
    assert neighborhood.swap_cost(i, j) == evaluator.cost(moved)


@settings(max_examples=150, deadline=None)
@given(problem_and_order(), st.data())
def test_relocate_delta_is_bit_identical_to_from_scratch(case, data):
    problem, order = case
    size = problem.size
    i = data.draw(st.integers(0, size - 1))
    j = data.draw(st.integers(0, size - 1))
    evaluator = problem.evaluator()
    neighborhood = evaluator.neighborhood(order)
    moved = neighborhood.relocated(i, j)
    assert list(sorted(moved)) == list(range(size))
    assert neighborhood.relocate_cost(i, j) == evaluator.cost(moved)


@settings(max_examples=100, deadline=None)
@given(problem_and_order(), st.data(), st.floats(0.0, 50.0, allow_nan=False))
def test_bounded_delta_short_circuit_semantics(case, data, bound):
    problem, order = case
    size = problem.size
    i = data.draw(st.integers(0, size - 1))
    j = data.draw(st.integers(0, size - 1))
    evaluator = problem.evaluator()
    neighborhood = evaluator.neighborhood(order)
    exact = evaluator.cost(neighborhood.swapped(i, j))
    bounded = neighborhood.swap_cost(i, j, bound)
    if bounded < bound:
        assert bounded == exact
    else:
        assert bounded <= exact
        assert exact >= bound


@settings(max_examples=80, deadline=None)
@given(problem_and_order(allow_precedence=True), st.data())
def test_move_feasibility_matches_full_validation(case, data):
    problem, order = case
    precedence = problem.precedence
    if precedence is None or not precedence.is_valid_order(order):
        return  # the neighbourhood contract assumes a feasible base plan
    size = problem.size
    i = data.draw(st.integers(0, size - 1))
    j = data.draw(st.integers(0, size - 1))
    neighborhood = problem.evaluator().neighborhood(order)
    assert neighborhood.swap_feasible(i, j) == precedence.is_valid_order(
        neighborhood.swapped(i, j)
    )
    assert neighborhood.relocate_feasible(i, j) == precedence.is_valid_order(
        neighborhood.relocated(i, j)
    )


# -- residual bounds ---------------------------------------------------------------


def _oracle_residual(partial: PartialPlan) -> float:
    """The pre-kernel from-scratch implementation of ``epsilon-bar``."""
    problem = partial.problem
    remaining = partial.remaining()

    def worst_outgoing(source, candidates):
        worst = problem.sink_cost(source)
        for destination in candidates:
            if destination == source:
                continue
            cost = problem.transfer_cost(source, destination)
            if cost > worst:
                worst = cost
        return worst

    last_bound = 0.0
    last = partial.last
    if last is not None and not partial.is_complete:
        last_rate = partial.prefix_products[-1]
        last_bound = last_rate * (
            problem.costs[last]
            + problem.selectivities[last] * worst_outgoing(last, remaining)
        )
    proliferation = 1.0
    for index in remaining:
        sigma = problem.selectivities[index]
        if sigma > 1.0:
            proliferation *= sigma
    best = last_bound
    for index in remaining:
        sigma = problem.selectivities[index]
        inflation = proliferation / sigma if sigma > 1.0 else proliferation
        rate_bound = partial.output_rate * inflation
        others = [other for other in remaining if other != index]
        term = rate_bound * (
            problem.costs[index] + sigma * worst_outgoing(index, others)
        )
        if term > best:
            best = term
    return best


@settings(max_examples=100, deadline=None)
@given(problem_and_order(), st.data())
def test_residual_bound_matches_from_scratch_formula(case, data):
    problem, order = case
    prefix_length = data.draw(st.integers(0, problem.size))
    prefix = order[:prefix_length]
    partial = PartialPlan.empty(problem)
    state = problem.evaluator().root()
    for index in prefix:
        partial = partial.extend(index)
        state = state.extend(index)
    oracle = _oracle_residual(partial)
    assert max_residual_cost(partial).value == oracle
    assert max_residual_cost(state).value == oracle
    assert problem.evaluator().residual_value(state) == oracle


# -- plumbing ----------------------------------------------------------------------


def test_evaluator_is_cached_per_problem(three_service_problem):
    assert three_service_problem.evaluator() is three_service_problem.evaluator()


def test_evaluator_extracts_problem_arrays(three_service_problem):
    evaluator = three_service_problem.evaluator()
    assert evaluator.size == 3
    assert evaluator.costs == three_service_problem.costs
    assert evaluator.selectivities == three_service_problem.selectivities
    for i in range(3):
        for j in range(3):
            assert evaluator.rows[i][j] == three_service_problem.transfer_cost(i, j)
    assert evaluator.sink == (0.0, 0.0, 0.0)
    assert evaluator.predecessor_masks is None


def test_predecessor_masks_reflect_constraints(constrained_problem):
    evaluator = constrained_problem.evaluator()
    masks = evaluator.predecessor_masks
    assert masks is not None
    precedence = constrained_problem.precedence
    for index in range(constrained_problem.size):
        expected = 0
        for predecessor in precedence.predecessors(index):
            expected |= 1 << predecessor
        assert masks[index] == expected


def test_prefix_state_rejects_nothing_but_stays_consistent(three_service_problem):
    # The kernel skips validation by design; the public PartialPlan API is the
    # validated boundary.  A complete prefix still round-trips to its order.
    state = three_service_problem.evaluator().prefix((2, 0, 1))
    assert state.order == (2, 0, 1)
    assert state.epsilon == pytest.approx(three_service_problem.cost((2, 0, 1)))

"""Property-based tests (hypothesis) for the core invariants.

These are the load-bearing guarantees of the reproduction:

* the branch-and-bound optimizer is *optimal* on arbitrary instances
  (cross-checked against exhaustive enumeration),
* Lemma 1 (monotone ``ε``), Lemma 2 (exact closure cost) and the ``ε̄`` bound
  hold on arbitrary instances, not just the fixtures,
* the exchange argument behind the centralized baseline holds for selective
  services, and
* plan/cost-model invariants (permutation invariance of the service set,
  scaling behaviour) hold.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    CommunicationCostMatrix,
    OrderingProblem,
    PartialPlan,
    branch_and_bound,
    dynamic_programming,
    epsilon_bar,
    exhaustive_search,
)
from repro.core.srivastava import selective_exchange_argument_holds, srivastava

# -- strategies ------------------------------------------------------------------


@st.composite
def problems(draw, min_size: int = 2, max_size: int = 6, max_selectivity: float = 1.0):
    size = draw(st.integers(min_size, max_size))
    costs = draw(
        st.lists(st.floats(0.0, 10.0, allow_nan=False), min_size=size, max_size=size)
    )
    selectivities = draw(
        st.lists(st.floats(0.05, max_selectivity, allow_nan=False), min_size=size, max_size=size)
    )
    flat = draw(
        st.lists(st.floats(0.0, 10.0, allow_nan=False), min_size=size * size, max_size=size * size)
    )
    rows = [[0.0 if i == j else flat[i * size + j] for j in range(size)] for i in range(size)]
    return OrderingProblem.from_parameters(costs, selectivities, rows)


# -- optimality ---------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(problems(max_size=5))
def test_branch_and_bound_matches_exhaustive(problem):
    assert abs(branch_and_bound(problem).cost - exhaustive_search(problem).cost) <= 1e-9


@settings(max_examples=40, deadline=None)
@given(problems(max_size=5, max_selectivity=2.5))
def test_branch_and_bound_optimal_with_proliferative_services(problem):
    assert abs(branch_and_bound(problem).cost - exhaustive_search(problem).cost) <= 1e-9


@settings(max_examples=40, deadline=None)
@given(problems(max_size=6))
def test_dynamic_programming_matches_branch_and_bound(problem):
    assert abs(dynamic_programming(problem).cost - branch_and_bound(problem).cost) <= 1e-9


@settings(max_examples=30, deadline=None)
@given(problems(max_size=5), st.booleans(), st.booleans())
def test_pruning_rules_never_change_the_optimum(problem, use_lemma2, use_lemma3):
    if use_lemma3 and not use_lemma2:
        use_lemma2 = True
    reference = exhaustive_search(problem).cost
    result = branch_and_bound(problem, use_lemma2=use_lemma2, use_lemma3=use_lemma3 and use_lemma2)
    assert abs(result.cost - reference) <= 1e-9


# -- lemma invariants -------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(problems(max_size=6), st.randoms(use_true_random=False))
def test_lemma1_epsilon_is_monotone(problem, rng):
    order = list(range(problem.size))
    rng.shuffle(order)
    partial = PartialPlan.empty(problem)
    previous = partial.epsilon
    for index in order:
        partial = partial.extend(index)
        assert partial.epsilon >= previous - 1e-12
        previous = partial.epsilon
    assert partial.epsilon == problem.cost(tuple(order)) or abs(
        partial.epsilon - problem.cost(tuple(order))
    ) <= 1e-9


@settings(max_examples=60, deadline=None)
@given(problems(max_size=6, max_selectivity=2.0), st.randoms(use_true_random=False))
def test_epsilon_is_a_lower_bound_for_every_completion(problem, rng):
    order = list(range(problem.size))
    rng.shuffle(order)
    prefix_length = rng.randint(1, problem.size)
    prefix = order[:prefix_length]
    partial = PartialPlan.from_order(problem, prefix)
    full_cost = problem.cost(tuple(order))
    assert partial.epsilon <= full_cost + 1e-9


@settings(max_examples=60, deadline=None)
@given(problems(max_size=6, max_selectivity=2.0), st.randoms(use_true_random=False))
def test_epsilon_bar_bounds_the_cost_of_any_completion(problem, rng):
    order = list(range(problem.size))
    rng.shuffle(order)
    prefix_length = rng.randint(1, problem.size)
    prefix = order[:prefix_length]
    partial = PartialPlan.from_order(problem, prefix)
    bound = max(partial.epsilon, epsilon_bar(partial))
    assert problem.cost(tuple(order)) <= bound + 1e-9


# -- centralized baseline ------------------------------------------------------------------


@settings(max_examples=80, deadline=None)
@given(
    st.floats(0.0, 50.0, allow_nan=False),
    st.floats(0.0, 50.0, allow_nan=False),
    st.floats(0.01, 1.0, allow_nan=False),
    st.floats(0.01, 1.0, allow_nan=False),
    st.floats(0.01, 10.0, allow_nan=False),
)
def test_selective_exchange_argument(cost_x, cost_y, sigma_x, sigma_y, rate):
    assert selective_exchange_argument_holds(cost_x, cost_y, sigma_x, sigma_y, rate)


@settings(max_examples=40, deadline=None)
@given(problems(max_size=5))
def test_srivastava_is_optimal_with_free_communication(problem):
    centralized = problem.with_transfer(CommunicationCostMatrix.zeros(problem.size))
    assert abs(srivastava(centralized).cost - exhaustive_search(centralized).cost) <= 1e-9


# -- cost-model invariants -----------------------------------------------------------------


@settings(max_examples=50, deadline=None)
@given(problems(max_size=6), st.floats(0.1, 10.0, allow_nan=False))
def test_cost_scales_linearly_with_all_parameters(problem, factor):
    """Scaling every cost, and every transfer, by ``f`` scales every plan's cost by ``f``."""
    order = tuple(range(problem.size))
    scaled = OrderingProblem.from_parameters(
        [cost * factor for cost in problem.costs],
        problem.selectivities,
        problem.transfer.scaled(factor),
    )
    assert scaled.cost(order) == abs(scaled.cost(order))
    assert abs(scaled.cost(order) - factor * problem.cost(order)) <= 1e-6 * max(
        1.0, factor * problem.cost(order)
    )


@settings(max_examples=50, deadline=None)
@given(problems(max_size=6))
def test_optimal_cost_is_a_lower_bound_over_heuristics(problem):
    from repro.core import GreedyStrategy, greedy, hill_climbing

    optimal = branch_and_bound(problem).cost
    assert greedy(problem, GreedyStrategy.NEAREST_SUCCESSOR).cost >= optimal - 1e-9
    assert greedy(problem, GreedyStrategy.CHEAPEST_COST).cost >= optimal - 1e-9
    assert hill_climbing(problem, max_iterations=50).cost >= optimal - 1e-9


@settings(max_examples=50, deadline=None)
@given(problems(max_size=6), st.randoms(use_true_random=False))
def test_plan_cost_is_independent_of_service_index_labelling(problem, rng):
    """Relabelling services and permuting the matrix accordingly leaves plan costs unchanged."""
    size = problem.size
    relabel = list(range(size))
    rng.shuffle(relabel)  # relabel[new_index] = old_index
    costs = [problem.costs[relabel[i]] for i in range(size)]
    selectivities = [problem.selectivities[relabel[i]] for i in range(size)]
    rows = [
        [problem.transfer.cost(relabel[i], relabel[j]) if i != j else 0.0 for j in range(size)]
        for i in range(size)
    ]
    relabelled = OrderingProblem.from_parameters(costs, selectivities, rows)
    order_old = tuple(range(size))
    # The same physical plan expressed in new labels.
    inverse = {old: new for new, old in enumerate(relabel)}
    order_new = tuple(inverse[index] for index in order_old)
    assert abs(problem.cost(order_old) - relabelled.cost(order_new)) <= 1e-9

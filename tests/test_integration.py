"""End-to-end integration tests spanning every subsystem.

These follow the lifecycle a deployment of the system would run:

    observe services  ->  calibrate a problem  ->  optimize the ordering
    ->  deploy the choreography  ->  execute (simulate)  ->  verify response time
"""

from __future__ import annotations

import pytest

from repro.core import branch_and_bound, compare, exhaustive_search
from repro.estimation import ProblemCalibrator, observe_simulation
from repro.network import clustered_topology, matrix_from_topology, random_placement
from repro.simulation import SimulationConfig, simulate_plan
from repro.workflow import QueryPlanner, ServiceCatalog, ServiceDescriptor, parse_query
from repro.workloads import credit_card_screening, default_spec, generate_problem


class TestOptimizeThenSimulate:
    def test_optimal_plan_is_fastest_in_simulation(self):
        """The optimizer's ranking carries over to simulated execution."""
        problem = credit_card_screening()
        results = compare(
            problem,
            algorithms=["branch_and_bound", "srivastava_centralized", "greedy_cheapest_cost"],
        )
        simulated = {
            name: simulate_plan(problem, result.plan.order, SimulationConfig(tuple_count=1200))
            for name, result in results.items()
        }
        optimal = simulated["branch_and_bound"].normalized_makespan
        for name, report in simulated.items():
            assert optimal <= report.normalized_makespan + 1e-6, name

    def test_simulation_matches_model_on_generated_workload(self):
        problem = generate_problem(default_spec(6), seed=42)
        order = branch_and_bound(problem).order
        report = simulate_plan(problem, order, SimulationConfig(tuple_count=1500))
        assert report.model_relative_error < 0.03
        assert report.bottleneck_matches_model


class TestCalibrationLoop:
    def test_observe_calibrate_reoptimize(self):
        """Calibrating from a simulated trace reproduces the optimizer's decision."""
        problem = credit_card_screening()
        # Execute an arbitrary (suboptimal) plan and observe it.
        initial_order = tuple(range(problem.size))
        report = simulate_plan(problem, initial_order, SimulationConfig(tuple_count=2000))
        calibrator = ProblemCalibrator()
        observe_simulation(calibrator, problem, report)
        calibrated = calibrator.build_problem(default_transfer=problem.transfer.mean_cost())

        optimal_true = branch_and_bound(problem)
        optimal_calibrated = branch_and_bound(calibrated)
        # The calibrated problem only has measurements for the links the initial
        # plan exercised; the recovered service parameters must still be accurate
        # enough that the calibrated optimum is a good plan on the *true* problem.
        names = [calibrated.service(index).name for index in optimal_calibrated.order]
        replayed_order = [problem.service_index(name) for name in names]
        replayed_cost = problem.cost(replayed_order)
        assert replayed_cost <= problem.cost(initial_order) + 1e-9
        assert replayed_cost <= optimal_true.cost * 1.5


class TestDeclarativePipeline:
    def test_query_to_simulated_execution(self):
        """Full path: textual query -> planner -> choreography -> simulation."""
        topology = clustered_topology(2, 3, seed=11)
        hosts = topology.host_names()
        catalog = ServiceCatalog(
            [
                ServiceDescriptor("ingest", host=hosts[0], cost=0.5, selectivity=1.0, produces={"doc"}),
                ServiceDescriptor(
                    "language_filter", host=hosts[1], cost=1.0, selectivity=0.6, consumes={"doc"}
                ),
                ServiceDescriptor(
                    "toxicity_filter", host=hosts[3], cost=2.0, selectivity=0.4, consumes={"doc"}
                ),
                ServiceDescriptor(
                    "enrich", host=hosts[4], cost=4.0, selectivity=1.0, consumes={"doc"}
                ),
            ]
        )
        planner = QueryPlanner(catalog, topology, tuple_size=4096.0, block_size=2)
        planned = planner.plan(
            parse_query(
                "PROCESS documents USING ingest, language_filter, toxicity_filter, enrich"
            )
        )
        # The plan is optimal for the lowered problem.
        assert planned.result.cost == pytest.approx(exhaustive_search(planned.problem).cost)
        # ingest produces the attribute every other service consumes, so it runs first.
        assert planned.result.order[0] == planned.problem.service_index("ingest")
        # The choreography can be executed by the simulator and meets the prediction.
        report = simulate_plan(
            planned.problem,
            planned.result.order,
            SimulationConfig(tuple_count=800, block_size=planned.choreography.block_size),
        )
        assert report.normalized_makespan <= planned.result.cost * 1.5 + 1e-6


class TestNetworkDrivenProblems:
    def test_topology_placement_problem_roundtrip(self):
        topology = clustered_topology(3, 3, seed=5)
        placement = random_placement(topology, 6, seed=5)
        matrix = matrix_from_topology(topology, placement, tuple_size=2048.0, block_size=8)
        problem = generate_problem(default_spec(6), seed=7).with_transfer(matrix)
        result = branch_and_bound(problem)
        assert result.optimal
        assert result.cost == pytest.approx(exhaustive_search(problem).cost)

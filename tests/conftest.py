"""Shared fixtures: small, hand-checkable problems and generated instances."""

from __future__ import annotations

import random

import pytest

from repro.core import CommunicationCostMatrix, OrderingProblem, PrecedenceGraph, Service
from repro.workloads import credit_card_screening, federated_document_pipeline


@pytest.fixture
def two_service_problem() -> OrderingProblem:
    """Two services, hand-computable costs.

    Plan (0, 1): terms are ``c0 + s0*t01 = 2 + 0.5*1 = 2.5`` and ``0.5*c1 = 1.5``
    -> bottleneck 2.5.
    Plan (1, 0): terms are ``c1 + s1*t10 = 3 + 0.6*4 = 5.4`` and ``0.6*c0 = 1.2``
    -> bottleneck 5.4.
    """
    return OrderingProblem.from_parameters(
        costs=[2.0, 3.0],
        selectivities=[0.5, 0.6],
        transfer=CommunicationCostMatrix([[0.0, 1.0], [4.0, 0.0]]),
        names=["alpha", "beta"],
    )


@pytest.fixture
def three_service_problem() -> OrderingProblem:
    """Three services with heterogeneous transfer costs."""
    return OrderingProblem.from_parameters(
        costs=[2.0, 1.0, 4.0],
        selectivities=[0.5, 0.9, 0.3],
        transfer=CommunicationCostMatrix(
            [[0.0, 1.0, 5.0], [2.0, 0.0, 1.0], [4.0, 2.0, 0.0]]
        ),
    )


@pytest.fixture
def four_service_problem() -> OrderingProblem:
    """Four services used by the optimizer comparison tests."""
    return OrderingProblem.from_parameters(
        costs=[2.0, 1.0, 4.0, 0.5],
        selectivities=[0.5, 0.9, 0.3, 0.7],
        transfer=CommunicationCostMatrix(
            [
                [0.0, 1.0, 5.0, 2.0],
                [2.0, 0.0, 1.0, 3.0],
                [4.0, 2.0, 0.0, 0.5],
                [1.0, 2.0, 3.0, 0.0],
            ]
        ),
    )


@pytest.fixture
def constrained_problem() -> OrderingProblem:
    """Five services with a precedence chain 0 -> 2 and 1 -> 3."""
    precedence = PrecedenceGraph(5)
    precedence.add(0, 2)
    precedence.add(1, 3)
    return OrderingProblem.from_parameters(
        costs=[1.0, 2.0, 3.0, 0.5, 1.5],
        selectivities=[0.8, 0.6, 0.9, 0.4, 0.7],
        transfer=CommunicationCostMatrix.uniform(5, 1.0),
        precedence=precedence,
    )


@pytest.fixture
def proliferative_problem() -> OrderingProblem:
    """A problem containing a proliferative (sigma > 1) service."""
    return OrderingProblem.from_parameters(
        costs=[4.0, 6.0, 9.0, 2.0],
        selectivities=[1.8, 0.45, 0.3, 0.55],
        transfer=CommunicationCostMatrix(
            [
                [0.0, 1.5, 12.0, 12.0],
                [1.5, 0.0, 12.0, 12.0],
                [12.0, 12.0, 0.0, 1.5],
                [12.0, 12.0, 1.5, 0.0],
            ]
        ),
    )


@pytest.fixture
def credit_card_problem() -> OrderingProblem:
    """The paper's motivating scenario."""
    return credit_card_screening()


@pytest.fixture
def document_problem() -> OrderingProblem:
    """The scenario with precedence constraints and asymmetric transfers."""
    return federated_document_pipeline()


def random_problem(
    size: int,
    seed: int,
    selectivity_range: tuple[float, float] = (0.1, 1.0),
    cost_range: tuple[float, float] = (0.0, 5.0),
    transfer_range: tuple[float, float] = (0.0, 4.0),
) -> OrderingProblem:
    """A small random problem for cross-checking optimizers (module-level helper)."""
    rng = random.Random(seed)
    costs = [rng.uniform(*cost_range) for _ in range(size)]
    selectivities = [rng.uniform(*selectivity_range) for _ in range(size)]
    rows = [
        [0.0 if i == j else rng.uniform(*transfer_range) for j in range(size)]
        for i in range(size)
    ]
    return OrderingProblem.from_parameters(costs, selectivities, rows)


@pytest.fixture
def make_random_problem():
    """Factory fixture around :func:`random_problem`."""
    return random_problem

"""Property tests of the consistent-hash ring.

The two load-bearing guarantees are asserted *exactly*, not statistically:

* resizing moves only the keys it must — adding a node steals keys only
  *for the new node* (no key moves between two old nodes), removing a node
  relocates only *that node's* keys;

and the statistical ones with deliberate slack:

* movement volume on resize stays near the ideal ``K/(N+1)``;
* load spreads over nodes within a constant factor of ideal.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ShardingError
from repro.sharding import HashRing

KEYS = [f"key-{index:04d}" for index in range(2000)]


def node_ids(count: int) -> list[str]:
    return [f"shard-{index}" for index in range(count)]


class TestBasics:
    def test_placement_is_deterministic_across_instances(self):
        first = HashRing(node_ids(5))
        second = HashRing(node_ids(5))
        assert first.placement(KEYS) == second.placement(KEYS)

    def test_single_node_owns_everything(self):
        ring = HashRing(["only"])
        assert set(ring.placement(KEYS).values()) == {"only"}

    def test_nodes_are_sorted_and_membership_works(self):
        ring = HashRing(["b", "a", "c"])
        assert ring.nodes == ("a", "b", "c")
        assert "a" in ring and "z" not in ring
        assert len(ring) == 3

    def test_empty_ring_rejects_lookups(self):
        with pytest.raises(ShardingError):
            HashRing().node_for("key")

    def test_duplicate_and_unknown_nodes_rejected(self):
        ring = HashRing(["a"])
        with pytest.raises(ShardingError):
            ring.add_node("a")
        with pytest.raises(ShardingError):
            ring.remove_node("b")
        with pytest.raises(ShardingError):
            ring.add_node("")
        with pytest.raises(ShardingError):
            HashRing(virtual_nodes=0)

    def test_insertion_order_does_not_matter(self):
        forward = HashRing(node_ids(6))
        backward = HashRing(reversed(node_ids(6)))
        assert forward.placement(KEYS) == backward.placement(KEYS)


class TestResizeMovement:
    @given(nodes=st.integers(min_value=1, max_value=8))
    @settings(max_examples=8, deadline=None)
    def test_adding_a_node_moves_keys_only_onto_it(self, nodes):
        """Exact consistent-hashing property: old nodes never trade keys."""
        ring = HashRing(node_ids(nodes))
        before = ring.placement(KEYS)
        ring.add_node("newcomer")
        after = ring.placement(KEYS)
        moved = [key for key in KEYS if before[key] != after[key]]
        assert all(after[key] == "newcomer" for key in moved)

    @given(nodes=st.integers(min_value=2, max_value=8))
    @settings(max_examples=8, deadline=None)
    def test_removing_a_node_moves_only_its_keys(self, nodes):
        ring = HashRing(node_ids(nodes))
        before = ring.placement(KEYS)
        victim = f"shard-{nodes - 1}"
        ring.remove_node(victim)
        after = ring.placement(KEYS)
        for key in KEYS:
            if before[key] != victim:
                assert after[key] == before[key]
            else:
                assert after[key] != victim

    @given(nodes=st.integers(min_value=1, max_value=8))
    @settings(max_examples=8, deadline=None)
    def test_movement_volume_stays_near_ideal(self, nodes):
        """Adding the (N+1)-th node should move about K/(N+1) keys (<=2x slack)."""
        ring = HashRing(node_ids(nodes))
        before = ring.placement(KEYS)
        ring.add_node("newcomer")
        after = ring.placement(KEYS)
        moved = sum(1 for key in KEYS if before[key] != after[key])
        ideal = len(KEYS) / (nodes + 1)
        assert moved <= 2.0 * ideal

    def test_add_then_remove_restores_the_original_placement(self):
        ring = HashRing(node_ids(4))
        before = ring.placement(KEYS)
        ring.add_node("transient")
        ring.remove_node("transient")
        assert ring.placement(KEYS) == before


class TestUniformity:
    @given(nodes=st.integers(min_value=2, max_value=8))
    @settings(max_examples=8, deadline=None)
    def test_load_is_within_a_constant_factor_of_ideal(self, nodes):
        ring = HashRing(node_ids(nodes))
        counts: dict[str, int] = {node: 0 for node in ring.nodes}
        for key, node in ring.placement(KEYS).items():
            counts[node] += 1
        ideal = len(KEYS) / nodes
        assert max(counts.values()) <= 2.0 * ideal
        assert min(counts.values()) >= 0.25 * ideal

    def test_more_virtual_nodes_tighten_the_spread(self):
        """Averaged over several rings: 256 vnodes spread far tighter than 2."""

        def spread(virtual_nodes: int, prefix: str) -> float:
            ring = HashRing(
                [f"{prefix}shard-{index}" for index in range(4)],
                virtual_nodes=virtual_nodes,
            )
            counts = {node: 0 for node in ring.nodes}
            for node in ring.placement(KEYS).values():
                counts[node] += 1
            return max(counts.values()) - min(counts.values())

        prefixes = [f"ring{index}-" for index in range(8)]
        coarse = sum(spread(2, prefix) for prefix in prefixes) / len(prefixes)
        fine = sum(spread(256, prefix) for prefix in prefixes) / len(prefixes)
        assert fine < 0.5 * coarse

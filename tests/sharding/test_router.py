"""Tests of the shard router: placement, batch split/merge, resize, processes."""

from __future__ import annotations

import pytest

from repro.exceptions import ShardingError
from repro.serving import PlanServiceConfig, fingerprint_problem
from repro.sharding import ShardRouter, ShardRouterConfig


def fast_config(**overrides) -> PlanServiceConfig:
    """A deterministic, portfolio-light service config for router tests."""
    defaults = dict(budget_seconds=None, algorithms=("greedy_min_term", "branch_and_bound"))
    defaults.update(overrides)
    return PlanServiceConfig(**defaults)


@pytest.fixture
def router():
    config = ShardRouterConfig(shards=3, backend="inproc", service_config=fast_config())
    with ShardRouter(config) as router:
        yield router


class TestRouting:
    def test_identical_problems_route_to_one_shard_and_hit_its_cache(
        self, router, make_random_problem
    ):
        problem = make_random_problem(5, 0)
        twin = make_random_problem(5, 0)
        first = router.submit(problem)
        second = router.submit(twin)
        assert not first.cache_hit and second.cache_hit
        assert first.fingerprint == second.fingerprint
        # Exactly one shard holds the entry, and it is the ring's owner.
        keys = router.cache_keys()
        holders = [shard_id for shard_id, shard_keys in keys.items() if shard_keys]
        assert holders == [router.shard_for(first.fingerprint)]

    def test_distinct_problems_spread_over_shards(self, router, make_random_problem):
        problems = [make_random_problem(5, seed) for seed in range(12)]
        for problem in problems:
            router.submit(problem)
        keys = router.cache_keys()
        assert sum(len(shard_keys) for shard_keys in keys.values()) == 12
        assert sum(1 for shard_keys in keys.values() if shard_keys) >= 2

    def test_placement_matches_the_ring(self, router, make_random_problem):
        problem = make_random_problem(6, 3)
        key = fingerprint_problem(problem).key
        response = router.submit(problem)
        assert response.fingerprint == key
        assert key in router.cache_keys()[router.shard_for(key)]


class TestBatches:
    def test_batch_responses_come_back_in_request_order(self, router, make_random_problem):
        problems = [make_random_problem(5, seed) for seed in range(8)]
        responses = router.optimize_batch(problems * 2)
        assert len(responses) == 16
        for index, response in enumerate(responses):
            problem = problems[index % 8]
            problem.validate_plan(response.order)
            assert response.cost == pytest.approx(problem.cost(response.order))
            assert response.fingerprint == fingerprint_problem(problem).key

    def test_batch_dedup_still_holds_per_shard(self, router, make_random_problem):
        problems = [make_random_problem(5, seed) for seed in range(4)]
        responses = router.optimize_batch(problems * 3)
        stats = router.stats()
        # 12 requests, 4 unique fingerprints: every duplicate coalesced or hit.
        assert stats["requests"]["answered"] == 12
        cold_leaders = [
            r for r in responses if not r.cache_hit and not r.coalesced
        ]
        assert len(cold_leaders) == 4

    def test_empty_batch(self, router):
        assert router.optimize_batch([]) == []


class TestStats:
    def test_aggregate_counts_sum_over_shards(self, router, make_random_problem):
        problems = [make_random_problem(5, seed) for seed in range(6)]
        for problem in problems:
            router.submit(problem)
            router.submit(problem)
        stats = router.stats()
        assert stats["shards"] == 3
        assert stats["requests"]["answered"] == 12
        assert stats["cache"]["hits"] == 6
        assert stats["cache"]["misses"] == 6
        assert stats["cache"]["hit_rate"] == pytest.approx(0.5)
        per_shard = stats["per_shard"]
        assert set(per_shard) == set(router.shard_ids)
        assert sum(s["requests"]["answered"] for s in per_shard.values()) == 12

    def test_routing_breakdown_sums_to_the_total(self, router, make_random_problem):
        problems = [make_random_problem(5, seed) for seed in range(6)]
        for problem in problems:
            router.submit(problem)
        router.optimize_batch(problems[:3])
        routing = router.stats()["routing"]
        assert set(routing["by_shard"]) <= set(router.shard_ids)
        assert routing["total"] == sum(routing["by_shard"].values()) == 9


class TestResize:
    def test_add_shard_moves_keys_only_onto_the_newcomer(self, router, make_random_problem):
        problems = [make_random_problem(5, seed) for seed in range(16)]
        problem_of_key = {fingerprint_problem(p).key: p for p in problems}
        for problem in problems:
            router.submit(problem)
        keys = [key for shard_keys in router.cache_keys().values() for key in shard_keys]
        assert sorted(keys) == sorted(problem_of_key)
        before = {key: router.shard_for(key) for key in keys}
        newcomer = router.add_shard()
        after = {key: router.shard_for(key) for key in keys}
        moved = [key for key in keys if before[key] != after[key]]
        assert all(after[key] == newcomer for key in moved)
        # A moved key re-optimizes on its new shard, then hits there.
        if moved:
            problem = problem_of_key[moved[0]]
            response = router.submit(problem)
            assert not response.cache_hit
            assert router.submit(problem).cache_hit

    def test_remove_shard_redistributes_and_rejects_unknown(self, router):
        with pytest.raises(ShardingError):
            router.remove_shard("no-such-shard")
        victim = router.shard_ids[0]
        router.remove_shard(victim)
        assert victim not in router.shard_ids
        assert len(router.shard_ids) == 2

    def test_last_shard_cannot_be_removed(self, make_random_problem):
        config = ShardRouterConfig(shards=1, service_config=fast_config())
        with ShardRouter(config) as router:
            with pytest.raises(ShardingError):
                router.remove_shard(router.shard_ids[0])
            assert router.submit(make_random_problem(4, 0)).cost > 0


class TestSharedCache:
    def test_shards_share_warm_plans_through_a_shared_store(
        self, tmp_path, make_random_problem
    ):
        problem = make_random_problem(5, 7)
        config = ShardRouterConfig(
            shards=2,
            service_config=fast_config(),
            shared_cache_dir=str(tmp_path / "plans"),
        )
        with ShardRouter(config) as router:
            assert not router.submit(problem).cache_hit
            owner = router.shard_for(fingerprint_problem(problem).key)
            # Every *other* shard sees the entry through the shared directory.
            for shard_id, shard in router._shards.items():
                if shard_id != owner:
                    assert fingerprint_problem(problem).key in shard.cache_keys()


class TestLifecycle:
    def test_closed_router_rejects_requests(self, make_random_problem):
        config = ShardRouterConfig(shards=2, service_config=fast_config())
        router = ShardRouter(config)
        router.close()
        router.close()  # idempotent
        with pytest.raises(ShardingError):
            router.submit(make_random_problem(4, 0))
        with pytest.raises(ShardingError):
            router.optimize_batch([make_random_problem(4, 0)])

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ShardingError):
            ShardRouterConfig(shards=0)
        with pytest.raises(ShardingError):
            ShardRouterConfig(backend="threads")


class TestProcessBackend:
    def test_process_shards_serve_submits_batches_and_stats(self, make_random_problem):
        problems = [make_random_problem(5, seed) for seed in range(4)]
        config = ShardRouterConfig(
            shards=2, backend="processes", service_config=fast_config()
        )
        with ShardRouter(config) as router:
            cold = router.submit(problems[0])
            warm = router.submit(problems[0])
            assert not cold.cache_hit and warm.cache_hit
            assert warm.cost == pytest.approx(cold.cost)
            responses = router.optimize_batch(problems * 2)
            assert len(responses) == 8
            for index, response in enumerate(responses):
                problems[index % 4].validate_plan(response.order)
            stats = router.stats()
            assert stats["requests"]["answered"] == 10
            assert stats["backend"] == "processes"
            keys = router.cache_keys()
            assert sum(len(shard_keys) for shard_keys in keys.values()) == 4

    def test_shard_side_errors_keep_their_type(self, make_random_problem):
        from repro.exceptions import OptimizationError

        config = ShardRouterConfig(
            shards=2,
            backend="processes",
            service_config=fast_config(
                algorithms=("exhaustive",),
                algorithm_options={"exhaustive": {"max_size": 3}},
                cache_enabled=False,
            ),
        )
        with ShardRouter(config) as router:
            with pytest.raises(OptimizationError):
                router.submit(make_random_problem(5, 0))

"""Tests of the shard-response multiplexer: one selector loop, not N readers."""

from __future__ import annotations

import multiprocessing
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.exceptions import ShardingError
from repro.serving import PlanServiceConfig
from repro.sharding import ProcessShard, ShardRouter, ShardRouterConfig
from repro.sharding.multiplexer import ResponseMultiplexer, default_multiplexer


def fast_config(**overrides) -> PlanServiceConfig:
    defaults = dict(budget_seconds=None, algorithms=("greedy_min_term",))
    defaults.update(overrides)
    return PlanServiceConfig(**defaults)


def reader_thread_names() -> list[str]:
    return [t.name for t in threading.enumerate() if t.name.startswith("shard-reader-")]


def mux_thread_names() -> list[str]:
    return [t.name for t in threading.enumerate() if t.name == "shard-mux"]


class TestSingleLoop:
    def test_process_shards_share_one_multiplexer_thread(self, make_random_problem):
        """The ROADMAP limitation: N process shards must not pin N reader threads."""
        before = default_multiplexer().ports()
        config = ShardRouterConfig(
            shards=3, backend="processes", service_config=fast_config()
        )
        with ShardRouter(config) as router:
            assert reader_thread_names() == []  # the old per-shard readers
            assert len(mux_thread_names()) == 1  # one selector loop for all shards
            assert router.multiplexer.ports() == before + 3
            # ... and it actually serves traffic.
            response = router.submit(make_random_problem(5, 0))
            assert sorted(response.order) == list(range(5))
        assert default_multiplexer().ports() == before

    def test_standalone_shard_registers_and_unregisters(self, make_random_problem):
        before = default_multiplexer().ports()
        shard = ProcessShard("solo", fast_config())
        try:
            assert default_multiplexer().ports() == before + 1
            response = shard.submit(make_random_problem(4, 1))
            assert sorted(response.order) == list(range(4))
        finally:
            shard.close()
        assert default_multiplexer().ports() == before

    def test_concurrent_submissions_correlate_through_one_loop(self, make_random_problem):
        """Interleaved answers from several shards reach the right waiters."""
        config = ShardRouterConfig(
            shards=2, backend="processes", service_config=fast_config()
        )
        problems = [make_random_problem(5, seed) for seed in range(10)]
        with ShardRouter(config) as router:
            with ThreadPoolExecutor(max_workers=8) as pool:
                responses = list(pool.map(router.submit, problems))
        for problem, response in zip(problems, responses):
            assert response.cost == pytest.approx(problem.cost(response.order))


class TestDeathAndShutdown:
    def test_dead_shard_fails_in_flight_requests(self, make_random_problem):
        shard = ProcessShard("doomed", fast_config())
        try:
            shard.submit(make_random_problem(4, 2))  # warm: the child is up
            shard._process.terminate()
            shard._process.join(timeout=5.0)
            with pytest.raises(ShardingError, match="died"):
                shard.submit(make_random_problem(4, 3))
        finally:
            shard.close()

    def test_closed_private_multiplexer_rejects_registration(self):
        mux = ResponseMultiplexer(name="test-mux")
        mux.close()
        with pytest.raises(RuntimeError):
            mux.register(None, on_message=lambda item: None)

    def test_private_multiplexer_dispatches_and_stops(self, make_random_problem):
        mux = ResponseMultiplexer(name="test-mux-2")
        shard = ProcessShard("private", fast_config(), multiplexer=mux)
        try:
            response = shard.submit(make_random_problem(4, 4))
            assert sorted(response.order) == list(range(4))
            assert shard.multiplexer is mux
            assert mux.thread_name == "test-mux-2"
        finally:
            shard.close()
            mux.close()
        # The loop thread exits promptly once closed.
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            if not any(t.name == "test-mux-2" for t in threading.enumerate()):
                break
            time.sleep(0.05)
        assert not any(t.name == "test-mux-2" for t in threading.enumerate())


class TestPollConfiguration:
    """The sweep cadence is configurable, and an idle loop schedules no timer."""

    def test_idle_selector_parks_without_timeout(self, monkeypatch):
        """With zero registered ports the selector waits with ``timeout=None``."""
        import multiprocessing.connection as mp_connection

        recorded: list[float | None] = []
        real_wait = mp_connection.wait

        def recording_wait(waitables, timeout=None):
            if threading.current_thread().name == "test-mux-idle":
                recorded.append(timeout)
            # Clamp so the loop keeps cycling (and recording) during the test.
            clamped = 0.01 if timeout is None else min(timeout, 0.01)
            return real_wait(waitables, timeout=clamped)

        monkeypatch.setattr(mp_connection, "wait", recording_wait)
        mux = ResponseMultiplexer(name="test-mux-idle", poll_seconds=0.05)
        response_queue = multiprocessing.Queue()
        try:
            port = mux.register(response_queue, on_message=lambda item: None)
            time.sleep(0.1)
            assert 0.05 in recorded  # registered: the sweep cadence drives the timeout
            mux.unregister(port)
            time.sleep(0.05)  # let a racing pass with the stale snapshot drain
            recorded.clear()
            time.sleep(0.1)
            assert recorded, "the idle loop should still cycle (clamped wait)"
            assert all(timeout is None for timeout in recorded)
        finally:
            mux.close()
            response_queue.close()

    def test_death_sweep_honours_low_poll_cadence(self):
        """A 20 ms cadence fails dead-shard waiters fast — no 250 ms sleeps."""
        mux = ResponseMultiplexer(name="test-mux-sweep", poll_seconds=0.02)
        response_queue = multiprocessing.Queue()
        died = threading.Event()
        try:
            port = mux.register(
                response_queue,
                on_message=lambda item: None,
                alive=lambda: False,
                on_death=died.set,
            )
            assert died.wait(timeout=2.0)
            mux.unregister(port)
        finally:
            mux.close()
            response_queue.close()

    def test_default_poll_env_override(self, monkeypatch):
        from repro.sharding.multiplexer import _POLL_SECONDS, _default_poll_seconds

        monkeypatch.setenv("REPRO_MUX_POLL_SECONDS", "0.03")
        assert _default_poll_seconds() == 0.03
        monkeypatch.delenv("REPRO_MUX_POLL_SECONDS")
        assert _default_poll_seconds() == _POLL_SECONDS

    @pytest.mark.parametrize("value", ["zero", "-1", "0", ""])
    def test_default_poll_env_rejects_non_positive(self, monkeypatch, value):
        from repro.sharding.multiplexer import _POLL_SECONDS, _default_poll_seconds

        monkeypatch.setenv("REPRO_MUX_POLL_SECONDS", value)
        if value == "":
            assert _default_poll_seconds() == _POLL_SECONDS  # unset-equivalent
        else:
            with pytest.raises(ValueError, match="positive number"):
                _default_poll_seconds()

"""Tests of process-backed portfolio racing and its hard cancellation.

The cancellation test is a satellite acceptance criterion of the parallel
engine: a deliberately over-budget *exact* member (exhaustive enumeration on
an 11-service pruning-resistant instance, ~minutes of work) must not delay
the race beyond its budget, because process members are terminated — not
merely abandoned — at the deadline.
"""

from __future__ import annotations

import multiprocessing
import os
import random
import time

import pytest

from repro.core import OrderingProblem, optimize
from repro.serving import PortfolioOptimizer, PortfolioOptions, run_portfolio
from repro.exceptions import ServingError


def pruning_resistant_problem(size: int, seed: int = 0) -> OrderingProblem:
    """Near-unit selectivities keep exact searches from closing subtrees early."""
    rng = random.Random(seed)
    return OrderingProblem.from_parameters(
        [rng.uniform(1.0, 1.3) for _ in range(size)],
        [rng.uniform(0.9, 1.0) for _ in range(size)],
        [
            [0.0 if i == j else rng.uniform(0.5, 4.0) for j in range(size)]
            for i in range(size)
        ],
        name=f"resistant-n{size}",
    )


class TestProcessBackend:
    def test_backend_is_validated(self):
        with pytest.raises(ServingError):
            PortfolioOptions(backend="fibers")

    def test_matches_thread_backend_results(self, four_service_problem):
        threads = run_portfolio(
            four_service_problem, PortfolioOptions(budget_seconds=None, backend="threads")
        )
        processes = run_portfolio(
            four_service_problem, PortfolioOptions(budget_seconds=None, backend="processes")
        )
        assert processes.best.cost == threads.best.cost
        assert set(processes.results) == set(threads.results)
        assert processes.best.optimal

    def test_member_errors_are_recorded_not_fatal(self, four_service_problem):
        options = PortfolioOptions(
            algorithms=("greedy_min_term", "exhaustive"),
            budget_seconds=None,
            algorithm_options={"exhaustive": {"max_size": 2}},
            backend="processes",
        )
        race = run_portfolio(four_service_problem, options)
        assert "exhaustive" in race.errors
        assert race.best.algorithm == "greedy_min_term"

    def test_results_attach_to_the_parent_instance(self, four_service_problem):
        race = run_portfolio(
            four_service_problem, PortfolioOptions(budget_seconds=None, backend="processes")
        )
        assert race.best.plan.problem is four_service_problem

    def test_optimizer_reuse_and_close(self, four_service_problem, three_service_problem):
        with PortfolioOptimizer(
            PortfolioOptions(budget_seconds=None, backend="processes")
        ) as portfolio:
            first = portfolio.optimize(four_service_problem)
            second = portfolio.optimize(three_service_problem)
            assert first.best.cost > 0 and second.best.cost > 0
        with pytest.raises(ServingError):
            portfolio.optimize(four_service_problem)


class TestHardCancellation:
    def test_over_budget_exact_member_is_terminated_at_the_deadline(self):
        """Satellite acceptance: the race returns within budget despite an
        over-size exhaustive member, which a thread backend could not kill."""
        problem = pruning_resistant_problem(11)
        budget = 0.5
        options = PortfolioOptions(
            algorithms=("greedy_min_term", "branch_and_bound", "exhaustive"),
            budget_seconds=budget,
            # Lift the size guard so exhaustive really starts chewing on
            # 11! permutations (minutes of work on any machine).
            algorithm_options={"exhaustive": {"max_size": 12}},
            backend="processes",
        )
        started = time.perf_counter()
        race = run_portfolio(problem, options)
        elapsed = time.perf_counter() - started
        assert elapsed < budget + 4.0, "termination must not wait for the straggler"
        assert "exhaustive" in race.timed_out
        assert race.best.cost <= optimize(problem, algorithm="greedy_min_term").cost + 1e-9
        problem.validate_plan(race.best.order)

    def test_zero_budget_still_returns_the_anytime_seed(self, four_service_problem):
        race = run_portfolio(
            four_service_problem,
            PortfolioOptions(budget_seconds=0.0, backend="processes"),
        )
        assert "greedy_min_term" in race.results
        assert race.best.cost > 0

    @pytest.mark.skipif(
        "fork" not in multiprocessing.get_all_start_methods(),
        reason="the in-test registry patch only reaches fork children",
    )
    def test_member_dying_without_reporting_is_an_error_not_a_hang(
        self, four_service_problem, monkeypatch
    ):
        from repro.core.optimizer import ALGORITHMS

        def die_silently(problem, **options):
            os._exit(17)  # no queue message, no exception — a hard crash

        monkeypatch.setitem(ALGORITHMS, "die_silently", die_silently)
        options = PortfolioOptions(
            algorithms=("greedy_min_term", "die_silently"),
            budget_seconds=None,  # 'wait for all': a hang here would be forever
            backend="processes",
        )
        race = run_portfolio(four_service_problem, options)
        assert "die_silently" in race.errors
        assert "died" in race.errors["die_silently"]
        assert race.best.algorithm == "greedy_min_term"

"""Tests of the wire codec: lossless, compact, version-guarded."""

from __future__ import annotations

import pickle

import pytest

from repro.core import OrderingProblem, PrecedenceGraph, Service, optimize
from repro.core.cost_model import CommunicationCostMatrix
from repro.exceptions import InvalidProblemError, ParallelError
from repro.parallel import result_from_wire, result_to_wire
from repro.serialization import problem_from_wire, problem_to_wire
from repro.serving import fingerprint_problem


class TestProblemWire:
    def test_roundtrip_is_lossless(self, make_random_problem):
        problem = make_random_problem(7, 11, selectivity_range=(0.2, 1.6))
        decoded = problem_from_wire(problem_to_wire(problem))
        assert decoded.size == problem.size
        assert decoded.costs == problem.costs
        assert decoded.selectivities == problem.selectivities
        assert decoded.name == problem.name
        for i in range(problem.size):
            assert decoded.service(i).name == problem.service(i).name
            for j in range(problem.size):
                assert decoded.transfer_cost(i, j) == problem.transfer_cost(i, j)

    def test_roundtrip_preserves_precedence_and_sink(self):
        precedence = PrecedenceGraph(4)
        precedence.add(0, 2)
        precedence.add(3, 1)
        problem = OrderingProblem.from_parameters(
            costs=[1.0, 2.0, 3.0, 0.5],
            selectivities=[0.8, 0.6, 0.9, 0.4],
            transfer=CommunicationCostMatrix.uniform(4, 1.0),
            precedence=precedence,
            sink_transfer=[0.1, 0.2, 0.0, 0.4],
            name="constrained",
        )
        decoded = problem_from_wire(problem_to_wire(problem))
        assert decoded.sink_transfer == problem.sink_transfer
        assert decoded.precedence is not None
        assert sorted(decoded.precedence.edges()) == sorted(problem.precedence.edges())
        # A plan violating the decoded constraints must still be rejected.
        with pytest.raises(Exception):
            decoded.validate_plan((2, 0, 1, 3))

    def test_roundtrip_preserves_hosts_and_threads(self):
        services = [
            Service(name="a", cost=1.0, selectivity=0.5, host="h1", threads=2),
            Service(name="b", cost=2.0, selectivity=0.8, host=None, threads=1),
        ]
        problem = OrderingProblem(services, CommunicationCostMatrix.uniform(2, 1.0))
        decoded = problem_from_wire(problem_to_wire(problem))
        assert decoded.service(0).host == "h1"
        assert decoded.service(0).threads == 2
        assert decoded.service(1).host is None

    def test_costs_agree_bit_for_bit(self, make_random_problem):
        problem = make_random_problem(6, 3)
        decoded = problem_from_wire(problem_to_wire(problem))
        order = tuple(range(6))
        assert decoded.cost(order) == problem.cost(order)
        assert (
            fingerprint_problem(decoded).digest == fingerprint_problem(problem).digest
        )

    def test_payload_is_hashable_and_compact(self, make_random_problem):
        problem = make_random_problem(8, 5)
        payload = problem_to_wire(problem)
        assert hash(payload) == hash(problem_to_wire(problem))
        # The whole point of the codec: shipping the payload must be cheaper
        # than deep-pickling the object graph (which drags Service objects,
        # the matrix wrapper and any cached evaluation kernel along).
        problem.evaluator()
        assert len(pickle.dumps(payload)) < len(pickle.dumps(problem))

    def test_version_guard(self, make_random_problem):
        payload = problem_to_wire(make_random_problem(3, 0))
        with pytest.raises(InvalidProblemError):
            problem_from_wire((99,) + payload[1:])
        with pytest.raises(InvalidProblemError):
            problem_from_wire("not-a-payload")


class TestResultWire:
    def test_roundtrip_reattaches_to_equivalent_problem(self, make_random_problem):
        problem = make_random_problem(6, 7)
        result = optimize(problem, algorithm="branch_and_bound")
        twin = problem_from_wire(problem_to_wire(problem))
        decoded = result_from_wire(result_to_wire(result), twin)
        assert decoded.order == result.order
        assert decoded.cost == result.cost
        assert decoded.optimal is result.optimal
        assert decoded.algorithm == result.algorithm
        assert decoded.statistics.nodes_expanded == result.statistics.nodes_expanded
        assert decoded.statistics.extra == result.statistics.extra

    def test_version_guard(self, make_random_problem):
        problem = make_random_problem(4, 1)
        with pytest.raises(ParallelError):
            result_from_wire(("bogus",), problem)

"""Tests of the persistent optimizer worker pool."""

from __future__ import annotations

import threading

import pytest

from repro.core import optimize
from repro.exceptions import OptimizationError, ParallelError
from repro.parallel import OptimizerPool, preferred_context
from repro.parallel import optimize_many as optimize_many_oneshot


@pytest.fixture(scope="module")
def pool():
    with OptimizerPool(workers=2) as shared:
        yield shared


class TestOptimizeMany:
    def test_matches_sequential_bit_for_bit(self, pool, make_random_problem):
        problems = [make_random_problem(6, seed) for seed in range(4)]
        for algorithm in ("branch_and_bound", "dynamic_programming", "greedy_min_term"):
            parallel = pool.optimize_many(problems, algorithm=algorithm)
            sequential = [optimize(problem, algorithm=algorithm) for problem in problems]
            for par, seq in zip(parallel, sequential):
                assert par.cost == seq.cost  # == on floats: bit-identical
                assert par.order == seq.order
                assert par.optimal is seq.optimal

    def test_results_attach_to_the_submitted_instances(self, pool, make_random_problem):
        problems = [make_random_problem(5, seed) for seed in range(3)]
        results = pool.optimize_many(problems, algorithm="branch_and_bound")
        for problem, result in zip(problems, results):
            assert result.plan.problem is problem
            problem.validate_plan(result.order)

    def test_batch_dedup_optimizes_each_unique_problem_once(self, make_random_problem):
        problems = [make_random_problem(5, seed) for seed in range(3)]
        with OptimizerPool(workers=2) as pool:
            results = pool.optimize_many(problems * 4, algorithm="branch_and_bound")
            assert pool.stats()["tasks_submitted"] == 3
            assert len(results) == 12
            for index, result in enumerate(results):
                assert result.cost == results[index % 3].cost

    def test_dedup_can_be_disabled(self, make_random_problem):
        problems = [make_random_problem(4, 0)] * 3
        with OptimizerPool(workers=1) as pool:
            pool.optimize_many(problems, algorithm="greedy_min_term", dedup=False)
            stats = pool.stats()
            assert stats["tasks_submitted"] == 3
            # The worker's warm cache still kicks in for the repeats.
            assert stats["warm_hits"] == 2

    def test_options_are_forwarded(self, pool, make_random_problem):
        problems = [make_random_problem(5, 9)]
        results = pool.optimize_many(
            problems, algorithm="beam_search", options={"width": 1}
        )
        assert results[0].algorithm == "beam_search"

    def test_member_error_is_raised_with_context(self, pool, make_random_problem):
        problems = [make_random_problem(4, 0), make_random_problem(5, 1)]
        with pytest.raises(OptimizationError, match="problem 1"):
            pool.optimize_many(problems, algorithm="exhaustive", options={"max_size": 4})

    def test_precedence_constraints_survive_the_boundary(self, pool, constrained_problem):
        results = pool.optimize_many([constrained_problem], algorithm="branch_and_bound")
        constrained_problem.validate_plan(results[0].order)
        sequential = optimize(constrained_problem, algorithm="branch_and_bound")
        assert results[0].cost == sequential.cost

    def test_empty_batch(self, pool):
        assert pool.optimize_many([]) == []

    def test_pool_is_reused_across_batches(self, make_random_problem):
        with OptimizerPool(workers=1) as pool:
            problem = make_random_problem(5, 2)
            pool.optimize_many([problem], algorithm="greedy_min_term")
            pool.optimize_many([problem], algorithm="greedy_min_term")
            stats = pool.stats()
            assert stats["tasks_submitted"] == 2
            # Same payload in the second batch: the worker's warm cache hit.
            assert stats["warm_hits"] == 1


class TestConcurrentBatches:
    def test_a_small_batch_overtakes_a_long_running_one(self, make_random_problem):
        """Satellite acceptance: optimize_many no longer serialises callers.

        With the pre-routing single lock, a tiny batch submitted while a slow
        batch compiled had to wait for the whole slow batch to return.  With
        per-batch task routing it only needs a free worker.
        """
        # A deliberately slow task (~1s on the kernel): precedence-free
        # exhaustive enumeration of a pruning-resistant 9-service instance.
        slow_problem = make_random_problem(9, 0, selectivity_range=(0.9, 1.0))
        fast_problem = make_random_problem(4, 1)
        slow_done = threading.Event()
        errors = []

        with OptimizerPool(workers=2) as pool:
            def run_slow():
                try:
                    pool.optimize_many(
                        [slow_problem], algorithm="exhaustive", options={"max_size": 9}
                    )
                except Exception as error:  # pragma: no cover - surfaced below
                    errors.append(error)
                finally:
                    slow_done.set()

            slow_thread = threading.Thread(target=run_slow)
            slow_thread.start()
            try:
                # stats() must answer while the slow batch is in flight ...
                assert pool.stats()["tasks_submitted"] <= 1
                # ... and a concurrent small batch must complete before it.
                results = pool.optimize_many([fast_problem], algorithm="greedy_min_term")
                overtook = not slow_done.is_set()
                assert results[0].algorithm == "greedy_min_term"
            finally:
                slow_thread.join(timeout=60.0)
            assert not errors
            assert overtook, "the small batch waited for the slow batch to finish"

    def test_many_threads_submit_correct_batches(self, make_random_problem):
        problems = [make_random_problem(5, seed) for seed in range(6)]
        expected = [optimize(problem, algorithm="branch_and_bound") for problem in problems]
        outcomes: dict[int, list] = {}
        errors = []

        with OptimizerPool(workers=2) as pool:
            def run(thread_index: int) -> None:
                try:
                    outcomes[thread_index] = pool.optimize_many(
                        problems, algorithm="branch_and_bound"
                    )
                except Exception as error:  # pragma: no cover - surfaced below
                    errors.append(error)

            threads = [threading.Thread(target=run, args=(index,)) for index in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60.0)

        assert not errors
        assert set(outcomes) == {0, 1, 2, 3}
        for results in outcomes.values():
            assert [r.cost for r in results] == [r.cost for r in expected]
            assert [r.order for r in results] == [r.order for r in expected]


class TestLifecycle:
    def test_closed_pool_rejects_batches(self, make_random_problem):
        pool = OptimizerPool(workers=1)
        pool.close()
        pool.close()  # idempotent
        with pytest.raises(ParallelError):
            pool.optimize_many([make_random_problem(4, 0)])

    def test_invalid_configuration(self):
        with pytest.raises(ParallelError):
            OptimizerPool(workers=0)
        with pytest.raises(ParallelError):
            OptimizerPool(workers=1, warm_cache_size=0)

    def test_oneshot_wrapper(self, make_random_problem):
        problems = [make_random_problem(5, seed) for seed in range(2)]
        results = optimize_many_oneshot(problems, algorithm="greedy_min_term", workers=1)
        assert [result.algorithm for result in results] == ["greedy_min_term"] * 2


class TestMpContext:
    def test_preferred_context_accepts_a_start_method_name(self):
        assert preferred_context("spawn").get_start_method() == "spawn"
        with pytest.raises(ParallelError):
            preferred_context("no-such-method")

    def test_pool_runs_on_a_spawn_context(self, make_random_problem):
        """The fork-with-threads caveat's escape hatch: a spawn-backed pool."""
        with OptimizerPool(workers=1, context="spawn") as pool:
            results = pool.optimize_many(
                [make_random_problem(4, 0)], algorithm="greedy_min_term"
            )
        assert results[0].algorithm == "greedy_min_term"


class TestExperimentIntegration:
    def test_optimize_suite_matches_sequential(self, pool, make_random_problem):
        from repro.experiments import optimize_suite

        problems = [make_random_problem(5, seed) for seed in range(3)]
        sequential = optimize_suite(problems, "branch_and_bound")
        pooled = optimize_suite(problems, "branch_and_bound", pool=pool)
        assert [r.cost for r in pooled] == [r.cost for r in sequential]
        assert [r.order for r in pooled] == [r.order for r in sequential]

    def test_e1_runs_on_the_worker_pool(self):
        from repro.experiments import run_e1_optimality

        result = run_e1_optimality(sizes=(4, 5), instances_per_size=2, workers=2)
        rows = result.row_dicts()
        assert [row["bb = exhaustive"] for row in rows] == [2, 2]
        assert [row["bb = dp"] for row in rows] == [2, 2]

    def test_e4_runs_on_the_worker_pool(self):
        from repro.experiments import run_e4_plan_quality

        result = run_e4_plan_quality(
            service_count=5, levels=(0.0, 1.0), instances_per_level=2, workers=2
        )
        for row in result.row_dicts():
            assert row["srivastava_centralized ratio"] >= 1.0

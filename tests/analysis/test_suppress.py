"""Suppression directives: grammar, effective lines, malformed-is-a-finding."""

from __future__ import annotations

from repro.analysis.suppress import parse_directives, suppressed_rules


def parse(comments, code_lines=frozenset()):
    return parse_directives(comments, frozenset(code_lines), "pkg/mod.py")


class TestDirectiveGrammar:
    def test_em_dash_separator(self):
        suppressions, malformed = parse({3: " repro-lint: disable=RL002 — wall clock by design"})
        assert malformed == []
        (suppression,) = suppressions
        assert suppression.rules == ("RL002",)
        assert suppression.reason == "wall clock by design"

    def test_double_dash_and_colon_separators(self):
        for text in (
            " repro-lint: disable=RL001 -- bridged via executor",
            " repro-lint: disable=RL001 : bridged via executor",
        ):
            suppressions, malformed = parse({1: text})
            assert malformed == []
            assert suppressions[0].reason == "bridged via executor"

    def test_multiple_rules(self):
        (suppression,), malformed = parse(
            {7: " repro-lint: disable=RL001,RL008 — span rides the bridge"}
        )
        assert malformed == []
        assert suppression.rules == ("RL001", "RL008")

    def test_unrelated_comments_are_ignored(self):
        suppressions, malformed = parse({1: " just a note", 2: " guarded-by: _lock"})
        assert suppressions == [] and malformed == []


class TestMalformedDirectives:
    """A typo'd suppression must be a finding, never a silent no-op."""

    def test_missing_reason_is_a_finding(self):
        suppressions, malformed = parse({5: " repro-lint: disable=RL002"})
        assert suppressions == []
        (finding,) = malformed
        assert finding.rule == "LINT000"
        assert finding.line == 5
        assert "malformed" in finding.message

    def test_missing_rule_list_is_a_finding(self):
        suppressions, malformed = parse({2: " repro-lint: disable= — because"})
        assert suppressions == [] and len(malformed) == 1

    def test_wrong_verb_is_a_finding(self):
        suppressions, malformed = parse({2: " repro-lint: ignore=RL002 — because"})
        assert suppressions == [] and len(malformed) == 1

    def test_lowercase_rule_id_is_a_finding(self):
        suppressions, malformed = parse({2: " repro-lint: disable=rl002 — because"})
        assert suppressions == [] and len(malformed) == 1


class TestEffectiveLines:
    def test_trailing_directive_covers_its_own_line(self):
        (suppression,), _ = parse(
            {4: " repro-lint: disable=RL002 — why"}, code_lines={4}
        )
        assert suppression.effective_line == 4

    def test_own_line_directive_covers_the_next_line(self):
        (suppression,), _ = parse(
            {4: " repro-lint: disable=RL002 — why"}, code_lines={5}
        )
        assert suppression.effective_line == 5

    def test_suppressed_rules_collapses_by_line(self):
        suppressions, _ = parse(
            {
                1: " repro-lint: disable=RL001 — a",
                3: " repro-lint: disable=RL002,RL004 — b",
            },
            code_lines={1},
        )
        assert suppressed_rules(suppressions) == {1: {"RL001"}, 4: {"RL002", "RL004"}}

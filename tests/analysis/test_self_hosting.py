"""Meta-test: the repository's own source passes its own lint.

This is the PR-gate in test form — if a change introduces a finding, the
author must fix it, suppress it inline with a reason, or baseline it with a
justification; merging the finding silently is not an option.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import Baseline, run_lint
from repro.analysis.checkers import all_checkers

REPO_ROOT = Path(__file__).resolve().parents[2]
BASELINE_PATH = REPO_ROOT / ".repro-lint-baseline.json"


def repo_report():
    return run_lint(
        [REPO_ROOT / "src"],
        root=REPO_ROOT,
        checkers=all_checkers(),
        baseline=Baseline.load(BASELINE_PATH),
    )


def test_src_has_no_non_baselined_findings():
    report = repo_report()
    rendered = "\n".join(finding.render() for finding in report.findings)
    assert not report.failed, f"repro lint found new violations:\n{rendered}"


def test_committed_baseline_entries_are_justified():
    baseline = Baseline.load(BASELINE_PATH)
    unjustified = [entry.key for entry in baseline.unjustified()]
    assert unjustified == [], f"baseline entries need real reasons: {unjustified}"


def test_analysis_package_lints_itself_clean():
    report = run_lint(
        [REPO_ROOT / "src" / "repro" / "analysis"],
        root=REPO_ROOT,
        checkers=all_checkers(),
    )
    rendered = "\n".join(finding.render() for finding in report.findings)
    assert report.findings == [], f"the linter fails its own lint:\n{rendered}"


def test_tests_tree_has_no_wall_clock_deadlines():
    report = run_lint(
        [REPO_ROOT / "tests"],
        root=REPO_ROOT,
        checkers=all_checkers(),
        rules=["RL002"],
    )
    rendered = "\n".join(finding.render() for finding in report.findings)
    assert report.findings == [], f"wall-clock deadlines in tests:\n{rendered}"

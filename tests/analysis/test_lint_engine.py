"""Engine semantics: suppression scope, LINT000, severity policy, JSON schema."""

from __future__ import annotations

import json

import pytest

from repro.analysis import Baseline, BaselineEntry, run_lint
from repro.analysis.checkers import all_checkers

WALL_CLOCK = "import time\n\ndef now():\n    return time.time()\n"


class TestSuppressionScope:
    def test_trailing_directive_silences_the_named_rule(self, lint):
        report = lint(
            {
                "mod.py": (
                    "import time\n\n"
                    "def now():\n"
                    "    return time.time()  # repro-lint: disable=RL002 — epoch by design\n"
                )
            },
            rules=["RL002"],
        )
        assert report.findings == []
        assert report.suppressed == 1
        assert not report.failed

    def test_directive_on_its_own_line_covers_the_next(self, lint):
        report = lint(
            {
                "mod.py": (
                    "import time\n\n"
                    "def now():\n"
                    "    # repro-lint: disable=RL002 — epoch by design\n"
                    "    return time.time()\n"
                )
            },
            rules=["RL002"],
        )
        assert report.findings == [] and report.suppressed == 1

    def test_directive_for_another_rule_does_not_silence(self, lint):
        report = lint(
            {
                "mod.py": (
                    "import time\n\n"
                    "def now():\n"
                    "    return time.time()  # repro-lint: disable=RL001 — wrong rule\n"
                )
            },
            rules=["RL002"],
        )
        assert [finding.rule for finding in report.findings] == ["RL002"]
        assert report.failed

    def test_directive_does_not_leak_to_other_lines(self, lint):
        report = lint(
            {
                "mod.py": (
                    "import time\n\n"
                    "def now():\n"
                    "    first = time.time()  # repro-lint: disable=RL002 — ok here\n"
                    "    return time.time()\n"
                )
            },
            rules=["RL002"],
        )
        assert len(report.findings) == 1 and report.findings[0].line == 5


class TestEngineFindings:
    def test_malformed_directive_is_reported(self, lint):
        report = lint({"mod.py": "x = 1  # repro-lint: disable=RL002\n"})
        assert [finding.rule for finding in report.findings] == ["LINT000"]
        assert report.failed

    def test_unknown_rule_in_directive_is_reported(self, lint):
        report = lint({"mod.py": "x = 1  # repro-lint: disable=RL999 — no such rule\n"})
        assert any(
            finding.rule == "LINT000" and "RL999" in finding.message
            for finding in report.findings
        )

    def test_syntax_error_is_a_finding_not_a_crash(self, lint):
        report = lint({"broken.py": "def oops(:\n"})
        assert [finding.rule for finding in report.findings] == ["LINT000"]
        assert "broken.py" in report.findings[0].path

    def test_engine_findings_cannot_be_suppressed(self, lint):
        # The malformed directive *is itself* the comment on this line; a
        # second, well-formed directive naming LINT000 must not silence it.
        report = lint(
            {
                "mod.py": (
                    "# repro-lint: disable=LINT000 — trying to hide\n"
                    "x = 1  # repro-lint: disable=RL002\n"
                )
            }
        )
        assert any(finding.rule == "LINT000" for finding in report.findings)


class TestRuleSelection:
    def test_unknown_rule_id_raises(self, lint):
        with pytest.raises(ValueError):
            lint({"mod.py": "x = 1\n"}, rules=["RL999"])

    def test_default_run_excludes_off_by_default_rules(self, lint):
        report = lint({"mod.py": "def orphan():\n    return 1\n"})
        assert "RL009" not in report.rules_run
        assert report.findings == []

    def test_explicit_selection_runs_only_named_rules(self, lint):
        report = lint({"mod.py": WALL_CLOCK}, rules=["RL001"])
        assert report.rules_run == ["RL001"]
        assert report.findings == []  # the RL002 violation is not scanned


class TestSeverityPolicy:
    def test_info_findings_never_fail_the_run(self, lint):
        report = lint(
            {"mod.py": "def orphan():\n    return 1\n"},
            rules=["RL009"],
        )
        assert [finding.rule for finding in report.findings] == ["RL009"]
        assert not report.failed

    def test_warning_findings_fail_the_run(self, lint):
        report = lint({"mod.py": WALL_CLOCK}, rules=["RL002"])
        assert report.failed


class TestBaselineIntegration:
    def test_baselined_findings_do_not_fail(self, lint):
        first = lint({"mod.py": WALL_CLOCK}, rules=["RL002"])
        (finding,) = first.findings
        baseline = Baseline(
            [
                BaselineEntry(
                    rule=finding.rule,
                    path=finding.path,
                    message=finding.message,
                    reason="legacy wall clock, tracked in ROADMAP",
                )
            ]
        )
        second = lint({"mod.py": WALL_CLOCK}, rules=["RL002"], baseline=baseline)
        assert second.findings == []
        assert len(second.baselined) == 1
        assert not second.failed

    def test_new_findings_still_fail_alongside_a_baseline(self, lint):
        baseline = Baseline(
            [BaselineEntry(rule="RL002", path="other.py", message="x", reason="r")]
        )
        report = lint({"mod.py": WALL_CLOCK}, rules=["RL002"], baseline=baseline)
        assert report.failed and report.baselined == []


class TestJsonSchema:
    def test_json_document_shape(self, lint):
        report = lint({"mod.py": WALL_CLOCK}, rules=["RL002"])
        document = json.loads(report.render_json())
        assert document["version"] == 1
        assert document["files"] == 1
        assert document["rules"] == ["RL002"]
        assert document["summary"]["failed"] is True
        assert document["summary"]["by_rule"] == {"RL002": 1}
        (finding,) = document["findings"]
        assert set(finding) >= {"rule", "path", "line", "message", "severity"}
        assert finding["rule"] == "RL002"
        assert finding["path"] == "mod.py"

    def test_text_summary_line(self, lint):
        report = lint({"mod.py": "x = 1\n"})
        text = report.render_text()
        assert "0 finding(s)" in text and "1 file(s)" in text


def test_every_registered_checker_satisfies_the_protocol():
    for checker in all_checkers():
        assert checker.rule.startswith("RL")
        assert checker.name and checker.description
        assert hasattr(checker, "severity") and hasattr(checker, "default")
        assert callable(checker.check)


def test_registered_rule_ids_are_unique():
    rules = [checker.rule for checker in all_checkers()]
    assert len(rules) == len(set(rules))

"""Baseline round-trips: grandfathering by identity, reasons preserved."""

from __future__ import annotations

import json

import pytest

from repro.analysis import Baseline, BaselineEntry, Finding, UNREVIEWED_REASON


def finding(rule="RL002", path="pkg/mod.py", line=10, message="wall clock"):
    return Finding(rule=rule, path=path, line=line, message=message)


class TestMatching:
    def test_matches_ignore_line_numbers(self):
        baseline = Baseline(
            [BaselineEntry(rule="RL002", path="pkg/mod.py", message="wall clock", reason="ok")]
        )
        assert baseline.match(finding(line=10)) is not None
        assert baseline.match(finding(line=999)) is not None

    def test_different_message_is_new(self):
        baseline = Baseline(
            [BaselineEntry(rule="RL002", path="pkg/mod.py", message="wall clock", reason="ok")]
        )
        assert baseline.match(finding(message="other")) is None


class TestRoundTrip:
    def test_save_load_round_trip(self, tmp_path):
        path = tmp_path / "baseline.json"
        original = Baseline(
            [
                BaselineEntry(rule="RL002", path="b.py", message="m2", reason="r2"),
                BaselineEntry(rule="RL001", path="a.py", message="m1", reason="r1"),
            ]
        )
        original.save(path)
        loaded = Baseline.load(path)
        assert sorted(entry.key for entry in loaded.entries) == sorted(
            entry.key for entry in original.entries
        )
        assert {entry.reason for entry in loaded.entries} == {"r1", "r2"}

    def test_missing_file_is_empty(self, tmp_path):
        assert len(Baseline.load(tmp_path / "nope.json")) == 0

    def test_version_mismatch_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "entries": []}))
        with pytest.raises(ValueError):
            Baseline.load(path)


class TestUpdatedFrom:
    def test_new_entries_get_placeholder_reason(self):
        updated = Baseline.updated_from([finding()], Baseline())
        assert [entry.reason for entry in updated.entries] == [UNREVIEWED_REASON]
        assert updated.unjustified() == updated.entries

    def test_persisting_entries_keep_their_reason(self):
        previous = Baseline(
            [BaselineEntry(rule="RL002", path="pkg/mod.py", message="wall clock", reason="justified")]
        )
        updated = Baseline.updated_from([finding()], previous)
        assert updated.entries[0].reason == "justified"
        assert updated.unjustified() == []

    def test_stale_entries_are_dropped(self):
        previous = Baseline(
            [BaselineEntry(rule="RL009", path="gone.py", message="dead", reason="r")]
        )
        updated = Baseline.updated_from([finding()], previous)
        assert [entry.rule for entry in updated.entries] == ["RL002"]

    def test_duplicate_findings_collapse_to_one_entry(self):
        updated = Baseline.updated_from([finding(line=1), finding(line=2)], Baseline())
        assert len(updated) == 1

"""Shared fixture: lint in-memory source trees through the real engine."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import Baseline, LintReport, run_lint
from repro.analysis.checkers import all_checkers


@pytest.fixture
def lint(tmp_path: Path):
    """Write ``{relative_path: source}`` files and lint them.

    Returns the :class:`LintReport`; keyword arguments pass through to
    :func:`run_lint` (``rules=['RL00x']`` narrows to one checker).
    """

    def _lint(
        files: dict[str, str],
        rules: list[str] | None = None,
        baseline: Baseline | None = None,
    ) -> LintReport:
        for relative, source in files.items():
            path = tmp_path / relative
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(source, encoding="utf-8")
        return run_lint(
            [tmp_path],
            root=tmp_path,
            checkers=all_checkers(),
            rules=rules,
            baseline=baseline,
        )

    return _lint

"""Per-rule fixtures: one true positive and one true negative for RL001–RL009."""

from __future__ import annotations


def rules_found(report):
    return [finding.rule for finding in report.findings]


class TestRL001AsyncBlocking:
    def test_blocking_sleep_in_async_def_is_flagged(self, lint):
        report = lint(
            {
                "mod.py": (
                    "import time\n\n"
                    "async def poll():\n"
                    "    time.sleep(0.1)\n"
                )
            },
            rules=["RL001"],
        )
        assert rules_found(report) == ["RL001"]

    def test_future_result_in_async_def_is_flagged(self, lint):
        report = lint(
            {
                "mod.py": (
                    "async def wait(future):\n"
                    "    return future.result()\n"
                )
            },
            rules=["RL001"],
        )
        assert rules_found(report) == ["RL001"]

    def test_sync_def_and_awaited_calls_are_clean(self, lint):
        report = lint(
            {
                "mod.py": (
                    "import asyncio\n"
                    "import time\n\n"
                    "def pause():\n"
                    "    time.sleep(0.1)\n\n"
                    "async def pause_async():\n"
                    "    await asyncio.sleep(0.1)\n"
                )
            },
            rules=["RL001"],
        )
        assert report.findings == []

    def test_nested_sync_def_inside_async_is_clean(self, lint):
        report = lint(
            {
                "mod.py": (
                    "import time\n\n"
                    "async def outer(loop):\n"
                    "    def blocking():\n"
                    "        time.sleep(0.1)\n"
                    "    await loop.run_in_executor(None, blocking)\n"
                )
            },
            rules=["RL001"],
        )
        assert report.findings == []


class TestRL002MonotonicTime:
    def test_wall_clock_deadline_is_flagged(self, lint):
        report = lint(
            {"mod.py": "import time\n\ndeadline = time.time() + 5\n"},
            rules=["RL002"],
        )
        assert rules_found(report) == ["RL002"]

    def test_from_import_alias_is_resolved(self, lint):
        report = lint(
            {"mod.py": "from time import time as now\n\nstamp = now()\n"},
            rules=["RL002"],
        )
        assert rules_found(report) == ["RL002"]

    def test_monotonic_clock_is_clean(self, lint):
        report = lint(
            {"mod.py": "import time\n\nstart = time.monotonic()\nns = time.perf_counter()\n"},
            rules=["RL002"],
        )
        assert report.findings == []


class TestRL003LockDiscipline:
    def test_unguarded_access_to_annotated_attribute_is_flagged(self, lint):
        report = lint(
            {
                "mod.py": (
                    "import threading\n\n"
                    "class Box:\n"
                    "    def __init__(self):\n"
                    "        self._lock = threading.Lock()\n"
                    "        self._items = []  # guarded-by: _lock\n\n"
                    "    def add(self, item):\n"
                    "        self._items.append(item)\n"
                )
            },
            rules=["RL003"],
        )
        assert rules_found(report) == ["RL003"]
        assert "_items" in report.findings[0].message

    def test_access_under_the_lock_is_clean(self, lint):
        report = lint(
            {
                "mod.py": (
                    "import threading\n\n"
                    "class Box:\n"
                    "    def __init__(self):\n"
                    "        self._lock = threading.Lock()\n"
                    "        self._items = []  # guarded-by: _lock\n\n"
                    "    def add(self, item):\n"
                    "        with self._lock:\n"
                    "            self._items.append(item)\n"
                )
            },
            rules=["RL003"],
        )
        assert report.findings == []

    def test_requires_lock_method_is_trusted(self, lint):
        report = lint(
            {
                "mod.py": (
                    "import threading\n\n"
                    "class Box:\n"
                    "    def __init__(self):\n"
                    "        self._lock = threading.Lock()\n"
                    "        self._items = []  # guarded-by: _lock\n\n"
                    "    def _drain(self):  # requires-lock: _lock\n"
                    "        return list(self._items)\n"
                )
            },
            rules=["RL003"],
        )
        assert report.findings == []

    def test_malformed_guarded_by_annotation_is_flagged(self, lint):
        report = lint(
            {
                "mod.py": (
                    "class Box:\n"
                    "    def __init__(self):\n"
                    "        self._items = []  # guarded-by: 9bad-name\n"
                )
            },
            rules=["RL003"],
        )
        assert rules_found(report) == ["RL003"]


class TestRL004ImportHygiene:
    def test_unguarded_numpy_import_is_flagged(self, lint):
        report = lint({"mod.py": "import numpy as np\n"}, rules=["RL004"])
        assert rules_found(report) == ["RL004"]

    def test_guarded_numpy_import_is_clean(self, lint):
        report = lint(
            {
                "mod.py": (
                    "try:\n"
                    "    import numpy as np\n"
                    "except ImportError:\n"
                    "    np = None\n"
                )
            },
            rules=["RL004"],
        )
        assert report.findings == []


class TestRL005ForkSafety:
    def test_import_time_thread_is_flagged(self, lint):
        report = lint(
            {
                "mod.py": (
                    "import threading\n\n"
                    "def tick():\n"
                    "    pass\n\n"
                    "worker = threading.Thread(target=tick)\n"
                )
            },
            rules=["RL005"],
        )
        assert rules_found(report) == ["RL005"]

    def test_bare_multiprocessing_queue_is_flagged_anywhere(self, lint):
        report = lint(
            {
                "mod.py": (
                    "import multiprocessing\n\n"
                    "def build():\n"
                    "    return multiprocessing.Queue()\n"
                )
            },
            rules=["RL005"],
        )
        assert rules_found(report) == ["RL005"]

    def test_thread_inside_a_function_and_context_queue_are_clean(self, lint):
        report = lint(
            {
                "mod.py": (
                    "import multiprocessing\n"
                    "import threading\n\n"
                    "def start(tick):\n"
                    "    worker = threading.Thread(target=tick)\n"
                    "    worker.start()\n"
                    "    ctx = multiprocessing.get_context('spawn')\n"
                    "    return ctx.Queue()\n"
                )
            },
            rules=["RL005"],
        )
        assert report.findings == []


class TestRL006WireParity:
    def test_emitted_key_never_read_is_flagged(self, lint):
        report = lint(
            {
                "mod.py": (
                    "def plan_to_wire(plan):\n"
                    "    return {'order': plan.order, 'cost': plan.cost}\n\n"
                    "def plan_from_wire(doc):\n"
                    "    return dict(order=doc['order'])\n"
                )
            },
            rules=["RL006"],
        )
        assert rules_found(report) == ["RL006"]
        assert "cost" in report.findings[0].message

    def test_required_key_never_emitted_is_flagged(self, lint):
        report = lint(
            {
                "mod.py": (
                    "def plan_to_wire(plan):\n"
                    "    return {'order': plan.order}\n\n"
                    "def plan_from_wire(doc):\n"
                    "    return dict(order=doc['order'], cost=doc['cost'])\n"
                )
            },
            rules=["RL006"],
        )
        assert rules_found(report) == ["RL006"]
        assert "cost" in report.findings[0].message

    def test_matching_codec_with_optional_key_is_clean(self, lint):
        report = lint(
            {
                "mod.py": (
                    "def plan_to_wire(plan):\n"
                    "    return {'order': plan.order, 'cost': plan.cost}\n\n"
                    "def plan_from_wire(doc):\n"
                    "    return dict(order=doc['order'], cost=doc.get('cost', 0.0))\n"
                )
            },
            rules=["RL006"],
        )
        assert report.findings == []


class TestRL007SeededRandomness:
    def test_module_level_random_in_core_is_flagged(self, lint):
        report = lint(
            {
                "core/sampler.py": (
                    "import random\n\n"
                    "def jitter():\n"
                    "    return random.random()\n"
                )
            },
            rules=["RL007"],
        )
        assert rules_found(report) == ["RL007"]

    def test_seeded_generator_in_core_is_clean(self, lint):
        report = lint(
            {
                "core/sampler.py": (
                    "import random\n\n"
                    "def jitter(seed):\n"
                    "    rng = random.Random(seed)\n"
                    "    return rng.random()\n"
                )
            },
            rules=["RL007"],
        )
        assert report.findings == []

    def test_global_random_outside_scoped_dirs_is_clean(self, lint):
        report = lint(
            {
                "benchmarks/noise.py": (
                    "import random\n\n"
                    "def jitter():\n"
                    "    return random.random()\n"
                )
            },
            rules=["RL007"],
        )
        assert report.findings == []


class TestRL008SpanHygiene:
    def test_span_call_outside_with_is_flagged(self, lint):
        report = lint(
            {
                "mod.py": (
                    "from repro.obs.trace import trace_span\n\n"
                    "def work():\n"
                    "    trace_span('step')\n"
                )
            },
            rules=["RL008"],
        )
        assert rules_found(report) == ["RL008"]

    def test_discarded_capture_is_flagged(self, lint):
        report = lint(
            {
                "mod.py": (
                    "from repro.obs.trace import capture\n\n"
                    "def work():\n"
                    "    capture()\n"
                )
            },
            rules=["RL008"],
        )
        assert rules_found(report) == ["RL008"]

    def test_submitted_closure_without_context_handoff_is_flagged(self, lint):
        report = lint(
            {
                "mod.py": (
                    "from repro.obs.trace import trace_span\n\n"
                    "def work(pool):\n"
                    "    def job():\n"
                    "        with trace_span('inner'):\n"
                    "            pass\n"
                    "    pool.submit(job)\n"
                )
            },
            rules=["RL008"],
        )
        assert rules_found(report) == ["RL008"]

    def test_context_handoff_and_with_usage_are_clean(self, lint):
        report = lint(
            {
                "mod.py": (
                    "from repro.obs.trace import capture, trace_span\n\n"
                    "def work(pool):\n"
                    "    ctx = capture()\n\n"
                    "    def job():\n"
                    "        with trace_span('inner', context=ctx):\n"
                    "            pass\n"
                    "    pool.submit(job)\n"
                    "    with trace_span('outer'):\n"
                    "        pass\n"
                )
            },
            rules=["RL008"],
        )
        assert report.findings == []


class TestRL009DeadSymbols:
    def test_unreferenced_public_helper_is_reported(self, lint):
        report = lint(
            {
                "lib.py": "def orphan():\n    return 1\n",
                "app.py": "print('hello')\n",
            },
            rules=["RL009"],
        )
        assert rules_found(report) == ["RL009"]
        assert "orphan" in report.findings[0].message

    def test_referenced_private_and_entry_point_symbols_are_clean(self, lint):
        report = lint(
            {
                "lib.py": (
                    "def used():\n"
                    "    return 1\n\n"
                    "def _private():\n"
                    "    return 2\n\n"
                    "def main():\n"
                    "    return used()\n"
                ),
                "app.py": "from lib import used\n\nvalue = used()\n",
            },
            rules=["RL009"],
        )
        assert report.findings == []

"""The ``repro lint`` subcommand: exit codes, formats, baseline workflow."""

from __future__ import annotations

import json

import pytest

from repro.analysis import UNREVIEWED_REASON, Baseline
from repro.cli import main

CLEAN = "import time\n\nstart = time.monotonic()\n"
DIRTY = "import time\n\ndeadline = time.time() + 5\n"


@pytest.fixture
def project(tmp_path, monkeypatch):
    """A throwaway project directory the CLI runs in (baseline lives in cwd)."""
    monkeypatch.chdir(tmp_path)
    src = tmp_path / "src"
    src.mkdir()
    return tmp_path


def write(project, source):
    (project / "src" / "mod.py").write_text(source, encoding="utf-8")


class TestExitCodes:
    def test_clean_tree_exits_zero(self, project, capsys):
        write(project, CLEAN)
        assert main(["lint", "src"]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_findings_exit_one(self, project, capsys):
        write(project, DIRTY)
        assert main(["lint", "src"]) == 1
        assert "RL002" in capsys.readouterr().out

    def test_missing_path_is_a_clean_error(self, project, capsys):
        assert main(["lint", "no-such-dir"]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_unknown_rule_is_a_clean_error(self, project, capsys):
        write(project, CLEAN)
        assert main(["lint", "src", "--rule", "RL999"]) == 2
        assert "RL999" in capsys.readouterr().err

    def test_corrupt_baseline_is_a_clean_error(self, project, capsys):
        write(project, CLEAN)
        (project / ".repro-lint-baseline.json").write_text("{not json")
        assert main(["lint", "src"]) == 2
        assert "error" in capsys.readouterr().err


class TestRuleSelection:
    def test_rule_flag_narrows_the_run(self, project, capsys):
        write(project, DIRTY)
        assert main(["lint", "src", "--rule", "RL001"]) == 0
        out = capsys.readouterr().out
        assert "rules: RL001" in out and "RL002" not in out


class TestJsonOutput:
    def test_json_is_parseable_and_keyed(self, project, capsys):
        write(project, DIRTY)
        assert main(["lint", "src", "--format", "json"]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["summary"]["failed"] is True
        assert document["findings"][0]["rule"] == "RL002"


class TestBaselineWorkflow:
    def test_update_then_justify_then_clean_run(self, project, capsys):
        write(project, DIRTY)
        baseline_path = project / ".repro-lint-baseline.json"

        # 1. Grandfather the finding; the update itself exits 0.
        assert main(["lint", "src", "--baseline-update"]) == 0
        assert "justify" in capsys.readouterr().out
        baseline = Baseline.load(baseline_path)
        assert [entry.reason for entry in baseline.entries] == [UNREVIEWED_REASON]

        # 2. An unreviewed reason still fails the next run.
        assert main(["lint", "src"]) == 1
        assert "without justification" in capsys.readouterr().err

        # 3. Justifying the entry makes the run clean without touching code.
        document = json.loads(baseline_path.read_text())
        document["entries"][0]["reason"] = "legacy deadline, migration tracked"
        baseline_path.write_text(json.dumps(document))
        assert main(["lint", "src"]) == 0
        assert "1 baselined" in capsys.readouterr().out

        # 4. Fixing the code and re-updating drops the stale entry.
        write(project, CLEAN)
        assert main(["lint", "src", "--baseline-update"]) == 0
        assert len(Baseline.load(baseline_path)) == 0

    def test_baseline_does_not_hide_new_findings(self, project, capsys):
        write(project, DIRTY)
        assert main(["lint", "src", "--baseline-update"]) == 0
        capsys.readouterr()
        write(
            project,
            DIRTY + "\nasync def poll():\n    import time as t\n    t.sleep(1)\n",
        )
        assert main(["lint", "src"]) == 1
        assert "RL001" in capsys.readouterr().out

"""Tests for the full-evaluation report generator."""

from __future__ import annotations

from repro.experiments import (
    Experiment,
    ExperimentRegistry,
    REGISTRY,
    generate_report,
    render_report,
    write_report,
)
from repro.experiments.e1_optimality import run_e1_optimality


def _tiny_registry() -> ExperimentRegistry:
    registry = ExperimentRegistry()
    registry.register(
        Experiment(
            "E1",
            "Optimality (tiny)",
            "tiny",
            lambda **kwargs: run_e1_optimality(sizes=(4,), instances_per_size=1),
        )
    )
    return registry


class TestRenderReport:
    def test_contains_every_result_section(self):
        results = [_tiny_registry().run("E1")]
        text = render_report(results, title="Demo report")
        assert text.startswith("# Demo report")
        assert "## E1" in text
        assert text.endswith("\n")


class TestGenerateReport:
    def test_generate_from_tiny_registry(self):
        text = generate_report(_tiny_registry())
        assert "## E1" in text
        assert "branch-and-bound" in text.lower()

    def test_overrides_are_applied(self):
        registry = ExperimentRegistry()
        captured: dict[str, object] = {}

        def runner(**kwargs):
            captured.update(kwargs)
            return run_e1_optimality(sizes=(4,), instances_per_size=1)

        registry.register(Experiment("EX", "t", "q", runner))
        generate_report(registry, overrides={"EX": {"custom": 7}})
        assert captured == {"custom": 7}

    def test_quick_parameters_cover_all_registered_experiments(self):
        from repro.experiments.report import _QUICK_PARAMETERS

        assert set(_QUICK_PARAMETERS) == set(REGISTRY.ids())


class TestWriteReport:
    def test_writes_markdown_file(self, tmp_path):
        path = write_report(_tiny_registry(), tmp_path / "report.md")
        content = path.read_text()
        assert content.startswith("# Reconstructed evaluation")
        assert "## E1" in content

"""Integration tests: every experiment runs (at reduced size) and its claims hold.

These use deliberately small parameters so the full test-suite stays fast; the
benchmarks under ``benchmarks/`` run the full-size versions.
"""

from __future__ import annotations

import math

import pytest

from repro.experiments import (
    REGISTRY,
    run_e1_optimality,
    run_e2_pruning,
    run_e3_scaling,
    run_e4_plan_quality,
    run_e5_selectivity,
    run_e6_btsp,
    run_e7_simulation,
    run_e8_ablation,
)


class TestRegistry:
    def test_all_eight_experiments_registered(self):
        assert REGISTRY.ids() == ["E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8"]

    def test_registry_run_dispatches(self):
        result = REGISTRY.run("E1", sizes=(4,), instances_per_size=1)
        assert result.experiment_id == "E1"


class TestE1Optimality:
    def test_branch_and_bound_matches_exact_baselines_everywhere(self):
        result = run_e1_optimality(sizes=(4, 5, 6), instances_per_size=3)
        for row in result.row_dicts():
            assert row["bb = exhaustive"] == row["instances"]
            assert row["bb = dp"] == row["instances"]
            assert row["max relative gap"] <= 1e-9


class TestE2Pruning:
    def test_explored_fraction_shrinks_with_n(self):
        result = run_e2_pruning(sizes=(5, 7, 9), instances_per_size=3)
        rows = result.row_dicts()
        fractions = [row["explored fraction"] for row in rows]
        assert fractions[0] > fractions[-1]
        for row in rows:
            assert row["bb nodes"] < math.factorial(row["n"])


class TestE3Scaling:
    def test_branch_and_bound_beats_exhaustive_at_the_largest_size(self):
        result = run_e3_scaling(sizes=(6, 8), instances_per_size=2, exhaustive_limit=8)
        rows = result.row_dicts()
        last = rows[-1]
        assert last["bb ms"] < last["exhaustive ms"]
        assert last["bb speedup vs exhaustive"] > 1.0


class TestE4PlanQuality:
    def test_ratios_are_at_least_one_and_centralized_degrades(self):
        result = run_e4_plan_quality(
            service_count=6, levels=(0.0, 1.0), instances_per_level=3
        )
        rows = result.row_dicts()
        for row in rows:
            for key, value in row.items():
                if key.endswith("ratio"):
                    assert value >= 1.0 - 1e-9
        uniform_row, clustered_row = rows[0], rows[-1]
        assert (
            clustered_row["srivastava_centralized ratio"]
            >= uniform_row["srivastava_centralized ratio"] - 1e-6
        )
        # Under full heterogeneity the communication-oblivious plan is measurably worse.
        assert clustered_row["srivastava_centralized ratio"] > 1.0


class TestE5Selectivity:
    def test_all_regimes_remain_optimal(self):
        result = run_e5_selectivity(service_count=6, instances_per_regime=2)
        for row in result.row_dicts():
            assert row["optimal (vs dp)"] is True
            assert row["greedy/optimal ratio"] >= 1.0 - 1e-9


class TestE6Btsp:
    def test_reduction_agrees_with_dedicated_solver(self):
        result = run_e6_btsp(sizes=(5, 6), instances_per_size=2)
        for row in result.row_dicts():
            assert row["optima agree"] == row["instances"]


class TestE7Simulation:
    def test_model_matches_simulation_closely(self):
        result = run_e7_simulation(instances=1, service_count=5, tuple_count=800)
        for row in result.row_dicts():
            assert row["relative error"] < 0.05
        assert any("ranks best" in note for note in result.notes)


class TestE8Ablation:
    def test_every_configuration_is_optimal_and_full_rules_prune_most(self):
        result = run_e8_ablation(service_count=7, instances=3)
        rows = {row["configuration"]: row for row in result.row_dicts()}
        assert all(row["all optimal"] is True for row in rows.values())
        assert rows["full algorithm"]["mean nodes"] <= rows["bound only, index order"]["mean nodes"]

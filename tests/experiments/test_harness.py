"""Unit tests for the experiment harness."""

from __future__ import annotations

import pytest

from repro.exceptions import ExperimentError
from repro.experiments import Experiment, ExperimentRegistry, ExperimentResult
from repro.utils import Table


def _dummy_result(experiment_id: str = "EX", rows: int = 2) -> ExperimentResult:
    table = Table(["n", "value"], title="dummy")
    for index in range(rows):
        table.add_row(index, index * 0.5)
    return ExperimentResult(
        experiment_id=experiment_id,
        title="a dummy experiment",
        table=table,
        parameters={"rows": rows},
        notes=["a note"],
    )


class TestExperimentResult:
    def test_to_markdown_contains_all_sections(self):
        text = _dummy_result().to_markdown()
        assert text.startswith("## EX")
        assert "*Parameters:* rows=2" in text
        assert "| n" in text
        assert "* a note" in text

    def test_row_dicts(self):
        result = _dummy_result(rows=3)
        assert result.row_dicts()[1] == {"n": 1, "value": 0.5}


class TestExperimentRegistry:
    def test_register_and_run(self):
        registry = ExperimentRegistry()
        registry.register(Experiment("EX", "t", "q", lambda **kw: _dummy_result(rows=kw.get("rows", 2))))
        assert "EX" in registry
        assert registry.ids() == ["EX"]
        result = registry.run("EX", rows=4)
        assert len(result.table) == 4

    def test_duplicate_registration_rejected(self):
        registry = ExperimentRegistry()
        experiment = Experiment("EX", "t", "q", lambda **kw: _dummy_result())
        registry.register(experiment)
        with pytest.raises(ExperimentError):
            registry.register(experiment)

    def test_unknown_experiment(self):
        with pytest.raises(ExperimentError):
            ExperimentRegistry().run("E404")

    def test_run_all_with_overrides(self):
        registry = ExperimentRegistry()
        registry.register(Experiment("A", "t", "q", lambda **kw: _dummy_result("A", kw.get("rows", 1))))
        registry.register(Experiment("B", "t", "q", lambda **kw: _dummy_result("B", kw.get("rows", 1))))
        results = registry.run_all(A={"rows": 3})
        assert [result.experiment_id for result in results] == ["A", "B"]
        assert len(results[0].table) == 3
        assert len(results[1].table) == 1

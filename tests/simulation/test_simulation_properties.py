"""Property-based tests for the execution simulator.

The analytic bounds that must hold for *any* instance and *any* plan:

* the simulated makespan is at least the busy time of every single-threaded
  stage — the tuples that *actually* reached the stage times its per-tuple
  processing cost, plus the tuples it actually emitted times the outgoing
  transfer cost (selectivity drops tuples, so downstream stages may see fewer
  than ``tuple_count * prefix_product`` tuples),
* the simulated makespan is at most ``tuple_count`` times the *sum* of the
  stage terms (a fully serialised execution),
* conservation: no stage emits more tuples than its selectivity allows (in
  expected-value mode), and the sink never receives more tuples than the
  source emitted times the product of all expansion factors.
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import OrderingProblem
from repro.simulation import SimulationConfig, simulate_plan


@st.composite
def simulation_cases(draw):
    size = draw(st.integers(2, 4))
    costs = draw(st.lists(st.floats(0.01, 3.0, allow_nan=False), min_size=size, max_size=size))
    selectivities = draw(
        st.lists(st.floats(0.1, 1.5, allow_nan=False), min_size=size, max_size=size)
    )
    flat = draw(
        st.lists(st.floats(0.0, 2.0, allow_nan=False), min_size=size * size, max_size=size * size)
    )
    rows = [[0.0 if i == j else flat[i * size + j] for j in range(size)] for i in range(size)]
    problem = OrderingProblem.from_parameters(costs, selectivities, rows)
    order = draw(st.permutations(list(range(size))))
    tuple_count = draw(st.integers(50, 200))
    return problem, tuple(order), tuple_count


@settings(max_examples=25, deadline=None)
@given(simulation_cases())
def test_makespan_bounded_by_bottleneck_and_serial_execution(case):
    problem, order, tuple_count = case
    report = simulate_plan(problem, order, SimulationConfig(tuple_count=tuple_count))
    stages = problem.stage_costs(order)
    serial = sum(stage.total for stage in stages)
    # Lower bound: every stage is single-threaded, so its busy intervals do not
    # overlap and the makespan covers all of them.  The busy time must be
    # computed from the tuples the stage actually saw (tuples_in / tuples_out),
    # not from tuple_count times the analytic input rate: integral thinning
    # delivers fewer tuples to downstream stages of selective pipelines.
    for position, index in enumerate(order):
        metrics = report.services[position]
        if position + 1 < len(order):
            outgoing = problem.transfer_cost(index, order[position + 1])
        else:
            outgoing = problem.sink_cost(index)
        stage_busy = metrics.tuples_in * problem.costs[index] + metrics.tuples_out * outgoing
        assert report.makespan >= stage_busy - 1e-6
    # Upper bound: even a fully serialised execution finishes within
    # tuple_count * (sum of terms) plus one pipeline fill.
    assert report.makespan <= tuple_count * serial + serial + 1e-6


@settings(max_examples=25, deadline=None)
@given(simulation_cases())
def test_tuple_conservation_in_expected_mode(case):
    problem, order, tuple_count = case
    report = simulate_plan(problem, order, SimulationConfig(tuple_count=tuple_count))
    incoming = tuple_count
    for metrics in report.services:
        sigma = problem.selectivities[metrics.service_index]
        assert metrics.tuples_in == incoming
        # Expected-value thinning keeps the emitted count within one tuple of sigma * inputs.
        assert abs(metrics.tuples_out - sigma * metrics.tuples_in) <= 1.0 + 1e-9
        incoming = metrics.tuples_out
    assert report.tuples_delivered == incoming
    expansion = math.prod(max(problem.selectivities[i], 1.0) for i in order)
    assert report.tuples_delivered <= tuple_count * expansion + len(order)


@settings(max_examples=15, deadline=None)
@given(simulation_cases(), st.integers(2, 16))
def test_block_size_does_not_change_delivered_tuples(case, block_size):
    problem, order, tuple_count = case
    single = simulate_plan(problem, order, SimulationConfig(tuple_count=tuple_count))
    blocked = simulate_plan(
        problem, order, SimulationConfig(tuple_count=tuple_count, block_size=block_size)
    )
    assert blocked.tuples_delivered == single.tuples_delivered

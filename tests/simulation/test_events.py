"""Unit tests for the event queue."""

from __future__ import annotations

import pytest

from repro.exceptions import SimulationError
from repro.simulation import EventQueue


class TestEventQueue:
    def test_orders_by_time(self):
        queue = EventQueue()
        fired: list[str] = []
        queue.schedule(2.0, lambda: fired.append("late"))
        queue.schedule(1.0, lambda: fired.append("early"))
        while (event := queue.pop()) is not None:
            event.callback()
        assert fired == ["early", "late"]

    def test_ties_break_by_scheduling_order(self):
        queue = EventQueue()
        fired: list[int] = []
        for index in range(5):
            queue.schedule(1.0, lambda i=index: fired.append(i))
        while (event := queue.pop()) is not None:
            event.callback()
        assert fired == [0, 1, 2, 3, 4]

    def test_cancelled_events_are_skipped(self):
        queue = EventQueue()
        fired: list[str] = []
        keep = queue.schedule(1.0, lambda: fired.append("keep"))
        cancel = queue.schedule(0.5, lambda: fired.append("cancel"))
        cancel.cancel()
        event = queue.pop()
        assert event is keep
        assert len(queue) == 0

    def test_negative_time_rejected(self):
        with pytest.raises(SimulationError):
            EventQueue().schedule(-1.0, lambda: None)

    def test_peek_time(self):
        queue = EventQueue()
        assert queue.peek_time() is None
        queue.schedule(3.0, lambda: None)
        queue.schedule(1.5, lambda: None)
        assert queue.peek_time() == 1.5

    def test_len_and_bool(self):
        queue = EventQueue()
        assert not queue
        queue.schedule(1.0, lambda: None)
        assert queue
        assert len(queue) == 1
        queue.clear()
        assert len(queue) == 0

    def test_pop_on_empty_returns_none(self):
        assert EventQueue().pop() is None

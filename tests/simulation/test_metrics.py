"""Unit tests for the simulation report metrics."""

from __future__ import annotations

import pytest

from repro.simulation import ServiceMetrics, SimulationReport, SimulationConfig, simulate_plan


def _metrics(**overrides) -> ServiceMetrics:
    defaults = dict(
        service_index=0,
        name="svc",
        position=0,
        tuples_in=100,
        tuples_out=50,
        blocks_sent=50,
        processing_time=10.0,
        transfer_time=5.0,
    )
    defaults.update(overrides)
    return ServiceMetrics(**defaults)


class TestServiceMetrics:
    def test_busy_time_sums_components(self):
        assert _metrics().busy_time == 15.0

    def test_observed_selectivity(self):
        assert _metrics().observed_selectivity == pytest.approx(0.5)
        assert _metrics(tuples_in=0, tuples_out=0).observed_selectivity == 0.0

    def test_busy_per_input_tuple(self):
        assert _metrics().busy_per_input_tuple == pytest.approx(0.15)
        assert _metrics(tuples_in=0).busy_per_input_tuple == 0.0

    def test_utilization_is_clamped(self):
        assert _metrics().utilization(30.0) == pytest.approx(0.5)
        assert _metrics().utilization(10.0) == 1.0
        assert _metrics().utilization(0.0) == 0.0


class TestSimulationReport:
    def test_report_tables_and_description(self, three_service_problem):
        report = simulate_plan(three_service_problem, (0, 1, 2), SimulationConfig(tuple_count=200))
        table = report.to_table()
        assert len(table) == 3
        assert "makespan" in report.describe()

    def test_derived_quantities(self):
        report = SimulationReport(
            order=(0,),
            tuple_count=100,
            tuples_delivered=40,
            makespan=50.0,
            predicted_cost=0.5,
            predicted_bottleneck_position=0,
            observed_bottleneck_position=0,
            events_processed=10,
            services=[_metrics()],
        )
        assert report.normalized_makespan == pytest.approx(0.5)
        assert report.throughput == pytest.approx(2.0)
        assert report.model_relative_error == pytest.approx(0.0)
        assert report.bottleneck_matches_model
        assert report.busy_per_source_tuple(0) == pytest.approx(0.15)

    def test_zero_tuple_report_is_well_defined(self):
        report = SimulationReport(
            order=(0,),
            tuple_count=0,
            tuples_delivered=0,
            makespan=0.0,
            predicted_cost=0.0,
            predicted_bottleneck_position=0,
            observed_bottleneck_position=0,
            events_processed=0,
            services=[],
        )
        assert report.normalized_makespan == 0.0
        assert report.throughput == 0.0
        assert report.model_relative_error == 0.0

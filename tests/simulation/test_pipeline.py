"""Integration tests: the simulated pipeline vs the analytic cost model."""

from __future__ import annotations

import pytest

from repro.core import branch_and_bound
from repro.exceptions import SimulationError
from repro.simulation import FilterMode, PipelineSimulator, SimulationConfig, simulate_plan


class TestSimulationConfig:
    def test_validation(self):
        with pytest.raises(SimulationError):
            SimulationConfig(tuple_count=-1)
        with pytest.raises(SimulationError):
            SimulationConfig(block_size=0)
        with pytest.raises(SimulationError):
            SimulationConfig(filter_mode="bogus")
        with pytest.raises(SimulationError):
            SimulationConfig(source_interarrival=-1.0)


class TestPipelineSimulator:
    def test_normalized_makespan_converges_to_bottleneck_cost(self, four_service_problem):
        order = branch_and_bound(four_service_problem).order
        report = simulate_plan(
            four_service_problem, order, SimulationConfig(tuple_count=2000)
        )
        assert report.model_relative_error < 0.02
        assert report.predicted_cost == pytest.approx(four_service_problem.cost(order))

    def test_bottleneck_stage_matches_model(self, four_service_problem):
        order = branch_and_bound(four_service_problem).order
        report = simulate_plan(four_service_problem, order, SimulationConfig(tuple_count=1000))
        assert report.bottleneck_matches_model

    def test_plan_ranking_is_preserved(self, four_service_problem):
        problem = four_service_problem
        import itertools

        orders = sorted(itertools.permutations(range(4)), key=problem.cost)
        best, worst = orders[0], orders[-1]
        simulator = PipelineSimulator(problem, SimulationConfig(tuple_count=800))
        assert (
            simulator.simulate(best).normalized_makespan
            < simulator.simulate(worst).normalized_makespan
        )

    def test_per_service_busy_time_matches_stage_terms(self, four_service_problem):
        order = branch_and_bound(four_service_problem).order
        report = simulate_plan(four_service_problem, order, SimulationConfig(tuple_count=2000))
        stages = four_service_problem.stage_costs(order)
        for stage in stages:
            simulated = report.busy_per_source_tuple(stage.position)
            assert simulated == pytest.approx(stage.total, rel=0.05, abs=1e-6)

    def test_observed_selectivities_track_parameters(self, four_service_problem):
        order = (0, 1, 2, 3)
        report = simulate_plan(four_service_problem, order, SimulationConfig(tuple_count=2000))
        for metrics in report.services:
            expected = four_service_problem.selectivities[metrics.service_index]
            if metrics.tuples_in > 100:
                assert metrics.observed_selectivity == pytest.approx(expected, abs=0.05)

    def test_stochastic_mode_is_seeded_and_close_to_expected(self, four_service_problem):
        order = (0, 1, 2, 3)
        config = SimulationConfig(tuple_count=1500, filter_mode=FilterMode.STOCHASTIC, seed=11)
        first = simulate_plan(four_service_problem, order, config)
        second = simulate_plan(four_service_problem, order, config)
        assert first.makespan == pytest.approx(second.makespan)
        expected_report = simulate_plan(four_service_problem, order, SimulationConfig(tuple_count=1500))
        assert first.normalized_makespan == pytest.approx(
            expected_report.normalized_makespan, rel=0.15
        )

    def test_block_shipping_reduces_event_count(self, four_service_problem):
        order = (0, 1, 2, 3)
        single = simulate_plan(four_service_problem, order, SimulationConfig(tuple_count=400))
        blocked = simulate_plan(
            four_service_problem, order, SimulationConfig(tuple_count=400, block_size=20)
        )
        assert blocked.events_processed < single.events_processed
        assert blocked.tuples_delivered == single.tuples_delivered

    def test_invalid_plan_rejected(self, four_service_problem):
        simulator = PipelineSimulator(four_service_problem)
        with pytest.raises(Exception):
            simulator.simulate((0, 1))

    def test_sink_transfer_is_simulated(self, three_service_problem):
        problem = three_service_problem.with_sink_transfer([2.0, 2.0, 2.0])
        order = (0, 1, 2)
        report = simulate_plan(problem, order, SimulationConfig(tuple_count=1000))
        assert report.model_relative_error < 0.05

    def test_precedence_constrained_plan_runs(self, constrained_problem):
        order = branch_and_bound(constrained_problem).order
        report = simulate_plan(constrained_problem, order, SimulationConfig(tuple_count=300))
        assert report.tuples_delivered >= 0
        assert report.makespan > 0

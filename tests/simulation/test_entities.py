"""Unit tests for the pipeline entities (filter policy, nodes, source, sink)."""

from __future__ import annotations

import random

import pytest

from repro.core import Service
from repro.exceptions import SimulationError
from repro.simulation import (
    Block,
    DataTuple,
    EndOfStream,
    FilterMode,
    FilterPolicy,
    ServiceNode,
    Simulator,
    SinkNode,
    SourceNode,
)


class TestFilterPolicy:
    def test_expected_mode_tracks_selectivity(self):
        policy = FilterPolicy(0.3, FilterMode.EXPECTED, random.Random(0))
        outputs = sum(policy.outputs_for_next_tuple() for _ in range(1000))
        assert outputs == pytest.approx(300, abs=1)

    def test_expected_mode_handles_proliferative_selectivity(self):
        policy = FilterPolicy(2.5, FilterMode.EXPECTED, random.Random(0))
        outputs = sum(policy.outputs_for_next_tuple() for _ in range(400))
        assert outputs == pytest.approx(1000, abs=1)

    def test_expected_mode_is_deterministic(self):
        first = FilterPolicy(0.7, FilterMode.EXPECTED, random.Random(1))
        second = FilterPolicy(0.7, FilterMode.EXPECTED, random.Random(99))
        assert [first.outputs_for_next_tuple() for _ in range(50)] == [
            second.outputs_for_next_tuple() for _ in range(50)
        ]

    def test_stochastic_mode_converges_to_selectivity(self):
        policy = FilterPolicy(0.4, FilterMode.STOCHASTIC, random.Random(7))
        outputs = sum(policy.outputs_for_next_tuple() for _ in range(5000))
        assert outputs / 5000 == pytest.approx(0.4, abs=0.03)

    def test_stochastic_mode_proliferative(self):
        policy = FilterPolicy(1.5, FilterMode.STOCHASTIC, random.Random(7))
        samples = [policy.outputs_for_next_tuple() for _ in range(2000)]
        assert set(samples) <= {1, 2}
        assert sum(samples) / 2000 == pytest.approx(1.5, abs=0.05)

    def test_unknown_mode_rejected(self):
        with pytest.raises(SimulationError):
            FilterPolicy(0.5, "bogus", random.Random(0))


def _run_single_node(
    selectivity: float = 1.0,
    cost: float = 1.0,
    transfer: float = 0.5,
    tuples: int = 10,
    block_size: int = 1,
    threads: int = 1,
) -> tuple[ServiceNode, SinkNode, Simulator]:
    simulator = Simulator()
    sink = SinkNode(simulator)
    node = ServiceNode(
        simulator,
        Service("svc", cost=cost, selectivity=selectivity, threads=threads),
        service_index=0,
        downstream=sink,
        transfer_cost=transfer,
        block_size=block_size,
    )
    source = SourceNode(simulator, node, tuple_count=tuples, block_size=block_size)
    source.start()
    simulator.run()
    return node, sink, simulator


class TestServiceNode:
    def test_single_threaded_node_serializes_processing_and_transfer(self):
        node, sink, simulator = _run_single_node(cost=1.0, transfer=0.5, tuples=10)
        # Each tuple occupies the thread for 1.0 (process) + 0.5 (send): makespan ~ 15.
        assert sink.completed_at == pytest.approx(15.0)
        assert sink.tuples_received == 10
        assert node.busy_time == pytest.approx(15.0)

    def test_filtering_reduces_transfer_work(self):
        node, sink, _ = _run_single_node(selectivity=0.5, cost=1.0, transfer=1.0, tuples=100)
        assert sink.tuples_received == 50
        assert node.counters.tuples_out == 50
        assert node.counters.transfer_time == pytest.approx(50.0)
        assert node.observed_selectivity == pytest.approx(0.5)

    def test_blocked_shipping_flushes_the_final_partial_block(self):
        node, sink, _ = _run_single_node(tuples=25, block_size=10)
        assert sink.tuples_received == 25
        assert node.counters.blocks_sent == 3  # 10 + 10 + 5
        assert sink.finished

    def test_multi_threaded_node_overlaps_work(self):
        single, sink_single, _ = _run_single_node(cost=1.0, transfer=0.0, tuples=20, threads=1)
        multi, sink_multi, _ = _run_single_node(cost=1.0, transfer=0.0, tuples=20, threads=2)
        assert sink_multi.completed_at < sink_single.completed_at

    def test_eos_forwarded_exactly_once(self):
        _, sink, _ = _run_single_node(tuples=5)
        assert sink.finished
        assert sink.completed_at is not None

    def test_zero_tuples_still_terminates(self):
        _, sink, _ = _run_single_node(tuples=0)
        assert sink.finished
        assert sink.tuples_received == 0

    def test_invalid_parameters_rejected(self):
        simulator = Simulator()
        sink = SinkNode(simulator)
        service = Service("svc", cost=1.0, selectivity=0.5)
        with pytest.raises(SimulationError):
            ServiceNode(simulator, service, 0, sink, transfer_cost=-1.0)
        with pytest.raises(SimulationError):
            ServiceNode(simulator, service, 0, sink, transfer_cost=0.0, block_size=0)


class TestSourceAndSink:
    def test_source_emits_requested_tuples(self):
        simulator = Simulator()
        sink = SinkNode(simulator)
        source = SourceNode(simulator, sink, tuple_count=7, block_size=3)
        source.start()
        simulator.run()
        assert sink.tuples_received == 7
        assert sink.finished

    def test_source_interarrival_spreads_emissions(self):
        simulator = Simulator()
        sink = SinkNode(simulator)
        source = SourceNode(simulator, sink, tuple_count=5, interarrival=2.0)
        source.start()
        simulator.run()
        assert sink.arrival_times == [0.0, 2.0, 4.0, 6.0, 8.0]

    def test_sink_latency_accounting(self):
        simulator = Simulator()
        sink = SinkNode(simulator)
        simulator.schedule(3.0, lambda: sink.receive(Block((DataTuple(0, created_at=1.0),))))
        simulator.schedule(4.0, lambda: sink.receive(EndOfStream(1)))
        simulator.run()
        assert sink.latencies == [2.0]
        assert sink.completed_at == 4.0

    def test_source_parameter_validation(self):
        simulator = Simulator()
        sink = SinkNode(simulator)
        with pytest.raises(SimulationError):
            SourceNode(simulator, sink, tuple_count=-1)
        with pytest.raises(SimulationError):
            SourceNode(simulator, sink, tuple_count=1, interarrival=-0.5)

"""Unit tests for the discrete-event simulation kernel."""

from __future__ import annotations

import pytest

from repro.exceptions import SimulationError
from repro.simulation import Simulator


class TestSimulator:
    def test_clock_advances_to_event_times(self):
        simulator = Simulator()
        times: list[float] = []
        simulator.schedule(1.0, lambda: times.append(simulator.now))
        simulator.schedule(2.5, lambda: times.append(simulator.now))
        end = simulator.run()
        assert times == [1.0, 2.5]
        assert end == 2.5
        assert simulator.events_processed == 2

    def test_schedule_in_uses_relative_delay(self):
        simulator = Simulator()
        observed: list[float] = []

        def first() -> None:
            simulator.schedule_in(0.5, lambda: observed.append(simulator.now))

        simulator.schedule(1.0, first)
        simulator.run()
        assert observed == [1.5]

    def test_cannot_schedule_in_the_past(self):
        simulator = Simulator()
        simulator.schedule(1.0, lambda: simulator.schedule(0.5, lambda: None))
        with pytest.raises(SimulationError):
            simulator.run()

    def test_negative_delay_rejected(self):
        simulator = Simulator()
        with pytest.raises(SimulationError):
            simulator.schedule_in(-0.1, lambda: None)

    def test_run_until_stops_before_later_events(self):
        simulator = Simulator()
        fired: list[float] = []
        simulator.schedule(1.0, lambda: fired.append(1.0))
        simulator.schedule(5.0, lambda: fired.append(5.0))
        simulator.run(until=2.0)
        assert fired == [1.0]
        assert simulator.now == 2.0
        assert simulator.pending_events == 1

    def test_max_events_guard(self):
        simulator = Simulator()

        def reschedule() -> None:
            simulator.schedule_in(1.0, reschedule)

        simulator.schedule(0.0, reschedule)
        with pytest.raises(SimulationError):
            simulator.run(max_events=100)

    def test_step_executes_one_event(self):
        simulator = Simulator()
        fired: list[int] = []
        simulator.schedule(1.0, lambda: fired.append(1))
        simulator.schedule(2.0, lambda: fired.append(2))
        assert simulator.step()
        assert fired == [1]
        assert simulator.step()
        assert not simulator.step()

    def test_reset(self):
        simulator = Simulator()
        simulator.schedule(1.0, lambda: None)
        simulator.run()
        simulator.reset()
        assert simulator.now == 0.0
        assert simulator.events_processed == 0
        assert simulator.pending_events == 0

    def test_events_scheduled_during_run_are_processed(self):
        simulator = Simulator()
        fired: list[str] = []

        def cascade(depth: int) -> None:
            fired.append(f"depth{depth}")
            if depth < 3:
                simulator.schedule_in(1.0, lambda: cascade(depth + 1))

        simulator.schedule(0.0, lambda: cascade(0))
        simulator.run()
        assert fired == ["depth0", "depth1", "depth2", "depth3"]

"""Package-level smoke tests: public API surface and docstring coverage."""

from __future__ import annotations

import importlib
import inspect

import pytest

import repro

SUBPACKAGES = [
    "repro.core",
    "repro.network",
    "repro.simulation",
    "repro.workloads",
    "repro.workflow",
    "repro.estimation",
    "repro.experiments",
    "repro.serving",
    "repro.utils",
]


class TestPublicSurface:
    def test_version_is_exposed(self):
        assert repro.__version__

    def test_quickstart_from_docstring_works(self):
        from repro import CommunicationCostMatrix, OrderingProblem, optimize

        problem = OrderingProblem.from_parameters(
            costs=[2.0, 1.0, 4.0],
            selectivities=[0.5, 0.9, 0.3],
            transfer=CommunicationCostMatrix([[0, 1, 5], [2, 0, 1], [4, 2, 0]]),
        )
        result = optimize(problem, algorithm="branch_and_bound")
        assert result.optimal

    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_subpackages_import_and_export_all(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__, f"{module_name} has no module docstring"
        assert hasattr(module, "__all__") or module_name == "repro.experiments"
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{module_name}.__all__ lists missing name {name}"

    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_public_callables_are_documented(self, module_name):
        """Every public class and function reachable from __all__ has a docstring."""
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            member = getattr(module, name)
            if inspect.isclass(member) or inspect.isfunction(member):
                assert member.__doc__, f"{module_name}.{name} has no docstring"

    def test_exceptions_form_a_single_hierarchy(self):
        from repro import exceptions

        subclasses = [
            obj
            for _, obj in inspect.getmembers(exceptions, inspect.isclass)
            if issubclass(obj, Exception) and obj.__module__ == "repro.exceptions"
        ]
        assert len(subclasses) >= 10
        for subclass in subclasses:
            assert issubclass(subclass, exceptions.ReproError) or subclass is exceptions.ReproError

"""Unit tests for adaptive re-optimization."""

from __future__ import annotations

import pytest

from repro.core import CommunicationCostMatrix, OrderingProblem, branch_and_bound
from repro.estimation import AdaptiveReoptimizer, compute_drift
from repro.exceptions import EstimationError


def _problem(costs, selectivities, transfer_value=1.0, names=None) -> OrderingProblem:
    size = len(costs)
    return OrderingProblem.from_parameters(
        costs,
        selectivities,
        CommunicationCostMatrix.uniform(size, transfer_value),
        names=names,
    )


class TestComputeDrift:
    def test_zero_drift_for_identical_problems(self, four_service_problem):
        drift = compute_drift(four_service_problem, four_service_problem)
        assert drift.overall == 0.0

    def test_cost_drift_measured_relatively(self):
        old = _problem([1.0, 2.0], [0.5, 0.5])
        new = _problem([1.5, 2.0], [0.5, 0.5])
        drift = compute_drift(old, new)
        assert drift.max_cost_drift == pytest.approx(0.5 / 1.5)
        assert drift.max_selectivity_drift == 0.0

    def test_transfer_drift(self):
        old = _problem([1.0, 2.0], [0.5, 0.5], transfer_value=1.0)
        new = _problem([1.0, 2.0], [0.5, 0.5], transfer_value=2.0)
        assert compute_drift(old, new).max_transfer_drift == pytest.approx(0.5)

    def test_matching_is_by_name_not_index(self):
        old = _problem([1.0, 2.0], [0.5, 0.9], names=["a", "b"])
        relabelled = _problem([2.0, 1.0], [0.9, 0.5], names=["b", "a"])
        assert compute_drift(old, relabelled).overall == 0.0

    def test_different_service_sets_rejected(self):
        old = _problem([1.0, 2.0], [0.5, 0.9], names=["a", "b"])
        other = _problem([1.0, 2.0], [0.5, 0.9], names=["a", "c"])
        with pytest.raises(EstimationError):
            compute_drift(old, other)


class TestAdaptiveReoptimizer:
    def test_initial_plan_is_optimal(self, four_service_problem):
        controller = AdaptiveReoptimizer(four_service_problem)
        assert controller.current_order == branch_and_bound(four_service_problem).order
        assert controller.adaptations == 0

    def test_small_drift_does_not_reoptimize(self, four_service_problem):
        controller = AdaptiveReoptimizer(four_service_problem, drift_threshold=0.10)
        # Nudge one cost by 1%.
        costs = list(four_service_problem.costs)
        costs[0] *= 1.01
        observed = OrderingProblem.from_parameters(
            costs, four_service_problem.selectivities, four_service_problem.transfer
        )
        decision = controller.update(observed)
        assert not decision.reoptimized
        assert not decision.switched
        assert controller.adaptations == 0

    def test_large_drift_triggers_switch_when_it_pays_off(self):
        # Initially service "fast" is cheap and goes first; after the drift it
        # becomes very expensive and the optimal order changes.
        before = _problem([1.0, 3.0, 3.5], [0.5, 0.5, 0.5], names=["fast", "mid", "slow"])
        controller = AdaptiveReoptimizer(before, drift_threshold=0.05, improvement_threshold=0.01)
        initial_names = controller.current_plan_names

        after = _problem([20.0, 3.0, 3.5], [0.5, 0.5, 0.5], names=["fast", "mid", "slow"])
        decision = controller.update(after)
        assert decision.reoptimized
        assert decision.switched
        assert decision.improvement > 0.0
        assert controller.adaptations == 1
        assert controller.current_plan_names != initial_names
        # The adopted plan is optimal for the new parameters.
        assert after.cost(controller.current_order) == pytest.approx(branch_and_bound(after).cost)

    def test_drift_without_improvement_keeps_the_plan(self):
        # All services scale by the same factor: large drift, but the relative
        # ordering (and hence the optimal plan) is unchanged.
        before = _problem([1.0, 2.0, 4.0], [0.5, 0.6, 0.7], names=["a", "b", "c"])
        controller = AdaptiveReoptimizer(before, drift_threshold=0.05)
        original = controller.current_plan_names
        after = _problem([2.0, 4.0, 8.0], [0.5, 0.6, 0.7], transfer_value=2.0, names=["a", "b", "c"])
        decision = controller.update(after)
        assert decision.reoptimized
        assert not decision.switched
        assert controller.current_plan_names == original
        assert controller.adaptations == 0

    def test_baseline_moves_to_observed_parameters(self):
        before = _problem([1.0, 2.0], [0.5, 0.5], names=["a", "b"])
        controller = AdaptiveReoptimizer(before, drift_threshold=0.05)
        after = _problem([1.5, 2.0], [0.5, 0.5], names=["a", "b"])
        controller.update(after)
        # Feeding the same observation again shows no further drift.
        second = controller.update(after)
        assert not second.reoptimized

    def test_parameter_validation(self, four_service_problem):
        with pytest.raises(ValueError):
            AdaptiveReoptimizer(four_service_problem, drift_threshold=-0.1)
        with pytest.raises(ValueError):
            AdaptiveReoptimizer(four_service_problem, improvement_threshold=-0.1)

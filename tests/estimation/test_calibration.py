"""Unit and integration tests for problem calibration from observations."""

from __future__ import annotations

import pytest

from repro.core import branch_and_bound
from repro.estimation import LinkObservation, ProblemCalibrator, observe_simulation
from repro.exceptions import EstimationError
from repro.simulation import SimulationConfig, simulate_plan


class TestLinkObservation:
    def test_per_tuple_cost(self):
        observation = LinkObservation("a", "b", block_size=20, elapsed=4.0)
        assert observation.per_tuple_cost() == pytest.approx(0.2)

    def test_invalid_observation(self):
        with pytest.raises(EstimationError):
            LinkObservation("a", "b", block_size=0, elapsed=1.0).per_tuple_cost()
        with pytest.raises(EstimationError):
            LinkObservation("a", "b", block_size=1, elapsed=-1.0).per_tuple_cost()


class TestProblemCalibrator:
    def test_builds_problem_from_observations(self):
        calibrator = ProblemCalibrator()
        calibrator.record_service_call("filter", processing_time=2.0, inputs=2, outputs=1, host="h1")
        calibrator.record_service_call("lookup", processing_time=3.0, inputs=1, outputs=2, host="h2")
        calibrator.record_transfer(LinkObservation("filter", "lookup", block_size=10, elapsed=5.0))
        calibrator.record_transfer(LinkObservation("lookup", "filter", block_size=10, elapsed=2.0))
        problem = calibrator.build_problem()
        assert problem.size == 2
        filter_index = problem.service_index("filter")
        lookup_index = problem.service_index("lookup")
        assert problem.costs[filter_index] == pytest.approx(1.0)
        assert problem.selectivities[filter_index] == pytest.approx(0.5)
        assert problem.selectivities[lookup_index] == pytest.approx(2.0)
        assert problem.transfer_cost(filter_index, lookup_index) == pytest.approx(0.5)
        assert problem.service(filter_index).host == "h1"

    def test_missing_link_requires_default(self):
        calibrator = ProblemCalibrator()
        calibrator.record_service_call("a", 1.0)
        calibrator.record_service_call("b", 1.0)
        with pytest.raises(EstimationError):
            calibrator.build_problem()
        problem = calibrator.build_problem(default_transfer=0.7)
        assert problem.transfer_cost(0, 1) == pytest.approx(0.7)

    def test_no_observations_raises(self):
        with pytest.raises(EstimationError):
            ProblemCalibrator().build_problem()

    def test_averaging_over_repeated_transfers(self):
        calibrator = ProblemCalibrator()
        calibrator.record_service_call("a", 1.0)
        calibrator.record_service_call("b", 1.0)
        calibrator.record_transfer(LinkObservation("a", "b", 1, 1.0))
        calibrator.record_transfer(LinkObservation("a", "b", 1, 3.0))
        problem = calibrator.build_problem(default_transfer=0.0)
        assert problem.transfer_cost(0, 1) == pytest.approx(2.0)


class TestObserveSimulation:
    def test_closed_loop_recovers_parameters(self, four_service_problem):
        """Simulate a plan, calibrate from the trace, and recover the true parameters."""
        order = (0, 1, 2, 3)
        report = simulate_plan(four_service_problem, order, SimulationConfig(tuple_count=2000))
        calibrator = ProblemCalibrator()
        observe_simulation(calibrator, four_service_problem, report)
        calibrated = calibrator.build_problem(default_transfer=0.0)

        for service in calibrated.services:
            true_index = four_service_problem.service_index(service.name)
            assert service.cost == pytest.approx(four_service_problem.costs[true_index], rel=0.02)
            assert service.selectivity == pytest.approx(
                four_service_problem.selectivities[true_index], abs=0.05
            )
        # Transfer costs along the simulated chain are recovered too.
        for position in range(len(order) - 1):
            source = four_service_problem.service(order[position]).name
            destination = four_service_problem.service(order[position + 1]).name
            source_index = calibrated.service_index(source)
            destination_index = calibrated.service_index(destination)
            true_cost = four_service_problem.transfer_cost(order[position], order[position + 1])
            assert calibrated.transfer_cost(source_index, destination_index) == pytest.approx(
                true_cost, rel=0.02, abs=1e-9
            )

    def test_calibrated_problem_is_optimizable(self, four_service_problem):
        report = simulate_plan(
            four_service_problem, (3, 2, 1, 0), SimulationConfig(tuple_count=1000)
        )
        calibrator = ProblemCalibrator()
        observe_simulation(calibrator, four_service_problem, report)
        calibrated = calibrator.build_problem(default_transfer=1.0)
        result = branch_and_bound(calibrated)
        assert result.optimal
        assert result.cost > 0

"""Unit tests for streaming statistics and selectivity estimation."""

from __future__ import annotations

import random
import statistics

import pytest

from repro.estimation import OnlineStatistics, ServiceObserver, estimate_selectivity
from repro.exceptions import EstimationError


class TestOnlineStatistics:
    def test_matches_batch_statistics(self):
        rng = random.Random(3)
        values = [rng.uniform(0, 10) for _ in range(500)]
        online = OnlineStatistics()
        online.extend(values)
        assert online.count == 500
        assert online.mean == pytest.approx(statistics.fmean(values))
        assert online.variance == pytest.approx(statistics.variance(values))
        assert online.minimum == min(values)
        assert online.maximum == max(values)

    def test_empty_statistics(self):
        online = OnlineStatistics()
        assert online.mean == 0.0
        assert online.variance == 0.0
        assert online.standard_error == 0.0

    def test_single_observation(self):
        online = OnlineStatistics()
        online.add(4.2)
        assert online.mean == 4.2
        assert online.variance == 0.0

    def test_confidence_interval_contains_mean(self):
        online = OnlineStatistics()
        online.extend([1.0, 2.0, 3.0, 4.0])
        low, high = online.confidence_interval()
        assert low <= online.mean <= high

    def test_non_finite_rejected(self):
        with pytest.raises(EstimationError):
            OnlineStatistics().add(float("nan"))


class TestEstimateSelectivity:
    def test_point_estimate(self):
        estimate = estimate_selectivity(inputs=200, outputs=50)
        assert estimate.value == pytest.approx(0.25)
        assert estimate.lower <= 0.25 <= estimate.upper
        assert estimate.is_selective

    def test_interval_narrows_with_more_data(self):
        small = estimate_selectivity(inputs=20, outputs=10)
        large = estimate_selectivity(inputs=2000, outputs=1000)
        assert (large.upper - large.lower) < (small.upper - small.lower)

    def test_proliferative_estimate(self):
        estimate = estimate_selectivity(inputs=100, outputs=250)
        assert estimate.value == pytest.approx(2.5)
        assert not estimate.is_selective
        assert estimate.lower <= 2.5 <= estimate.upper

    def test_lower_bound_never_negative(self):
        estimate = estimate_selectivity(inputs=3, outputs=0)
        assert estimate.lower == 0.0

    def test_invalid_counts(self):
        with pytest.raises(EstimationError):
            estimate_selectivity(inputs=0, outputs=0)
        with pytest.raises(EstimationError):
            estimate_selectivity(inputs=10, outputs=-1)


class TestServiceObserver:
    def test_cost_estimate_is_per_tuple(self):
        observer = ServiceObserver("svc")
        observer.record_call(processing_time=10.0, inputs=10, outputs=5)
        observer.record_call(processing_time=20.0, inputs=10, outputs=6)
        assert observer.observations == 2
        assert observer.cost_estimate() == pytest.approx(1.5)

    def test_selectivity_estimate_pools_counts(self):
        observer = ServiceObserver("svc")
        observer.record_call(1.0, inputs=50, outputs=20)
        observer.record_call(1.0, inputs=50, outputs=30)
        assert observer.selectivity_estimate().value == pytest.approx(0.5)

    def test_no_observations_raises(self):
        with pytest.raises(EstimationError):
            ServiceObserver("svc").cost_estimate()

    def test_invalid_observations_rejected(self):
        observer = ServiceObserver("svc")
        with pytest.raises(EstimationError):
            observer.record_call(-1.0)
        with pytest.raises(EstimationError):
            observer.record_call(1.0, inputs=0)
        with pytest.raises(EstimationError):
            observer.record_call(1.0, outputs=-2)

    def test_name_required(self):
        with pytest.raises(EstimationError):
            ServiceObserver("")

    def test_confidence_interval(self):
        observer = ServiceObserver("svc")
        for value in (1.0, 1.2, 0.8, 1.1):
            observer.record_call(value)
        low, high = observer.cost_confidence_interval()
        assert low <= observer.cost_estimate() <= high
